package strategy

import (
	"encoding/binary"
	"fmt"
	"sort"

	"corep/internal/btree"
	"corep/internal/object"
	"corep/internal/tuple"
	"corep/internal/txn"
	"corep/internal/workload"
)

// parentRef is one qualifying ParentRel tuple: its key and its unit.
type parentRef struct {
	key  int64
	unit []object.OID
}

// scanParents range-scans ParentRel for lo ≤ key ≤ hi and decodes each
// qualifying tuple's children attribute.
func scanParents(db *workload.DB, lo, hi int64) ([]parentRef, error) {
	childIdx := db.ParentSchema.MustIndex("children")
	var out []parentRef
	err := db.Parent.Tree.Range(lo, hi, func(key int64, payload []byte) (bool, error) {
		v, err := tuple.DecodeField(db.ParentSchema, payload, childIdx)
		if err != nil {
			return false, err
		}
		oids, err := object.DecodeOIDs(v.Raw)
		if err != nil {
			return false, err
		}
		out = append(out, parentRef{key: key, unit: oids})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fetchChildAttr probes the child relation for oid and projects the
// query attribute — the per-subobject step of every depth-first
// strategy.
func fetchChildAttr(db *workload.DB, oid object.OID, attrIdx int) (int64, error) {
	rel, err := db.ChildByRelID(oid.Rel())
	if err != nil {
		return 0, err
	}
	rec, err := rel.Tree.Get(oid.Key())
	if err != nil {
		return 0, fmt.Errorf("strategy: subobject %v: %w", oid, err)
	}
	v, err := tuple.DecodeField(db.ChildSchema, rec, attrIdx)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// fetchChildAttrs probes the child relations for every OID of oids and
// stores the projected attribute at the matching index of out
// (len(out) == len(oids)). Probes are grouped per child relation and
// issued through the B-tree's page-ordered GetBatch, so a random probe
// set becomes one sorted sweep per relation while the output order stays
// exactly that of a per-OID fetchChildAttr loop. Config.ProbeBatch=false
// falls back to that loop, reproducing the paper's one-probe-at-a-time
// INGRES behaviour.
func fetchChildAttrs(db *workload.DB, oids []object.OID, attrIdx int, out []int64) error {
	if !db.Cfg.ProbeBatch {
		for i, oid := range oids {
			v, err := fetchChildAttr(db, oid, attrIdx)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	// Group probe indices per child relation; relations are visited in
	// id order so the I/O pattern is deterministic.
	byRel := make(map[uint16][]int)
	for i, oid := range oids {
		byRel[oid.Rel()] = append(byRel[oid.Rel()], i)
	}
	relIDs := make([]int, 0, len(byRel))
	for id := range byRel {
		relIDs = append(relIDs, int(id))
	}
	sort.Ints(relIDs)
	for _, rid := range relIDs {
		rel, err := db.ChildByRelID(uint16(rid))
		if err != nil {
			return err
		}
		idxs := byRel[uint16(rid)]
		keys := make([]int64, len(idxs))
		for j, i := range idxs {
			keys[j] = oids[i].Key()
		}
		err = rel.Tree.GetBatch(keys, func(j int, payload []byte) error {
			v, err := tuple.DecodeField(db.ChildSchema, payload, attrIdx)
			if err != nil {
				return err
			}
			out[idxs[j]] = v.Int
			return nil
		})
		if err != nil {
			return fmt.Errorf("strategy: batch probe of %s: %w", rel.Name, err)
		}
	}
	return nil
}

// fetchChildRecs fetches the full child records of oids into out
// (len(out) == len(oids), record copies at their original positions).
// Like fetchChildAttrs it groups probes per relation and issues them
// page-ordered, unless Config.ProbeBatch=false asks for one Get per OID.
// DFSCACHE materializes units through it.
func fetchChildRecs(db *workload.DB, oids []object.OID, out [][]byte) error {
	if !db.Cfg.ProbeBatch {
		for i, oid := range oids {
			rel, err := db.ChildByRelID(oid.Rel())
			if err != nil {
				return err
			}
			rec, err := rel.Tree.Get(oid.Key())
			if err != nil {
				return fmt.Errorf("strategy: subobject %v: %w", oid, err)
			}
			out[i] = rec
		}
		return nil
	}
	byRel := make(map[uint16][]int)
	for i, oid := range oids {
		byRel[oid.Rel()] = append(byRel[oid.Rel()], i)
	}
	relIDs := make([]int, 0, len(byRel))
	for id := range byRel {
		relIDs = append(relIDs, int(id))
	}
	sort.Ints(relIDs)
	for _, rid := range relIDs {
		rel, err := db.ChildByRelID(uint16(rid))
		if err != nil {
			return err
		}
		idxs := byRel[uint16(rid)]
		keys := make([]int64, len(idxs))
		for j, i := range idxs {
			keys[j] = oids[i].Key()
		}
		err = rel.Tree.GetBatch(keys, func(j int, payload []byte) error {
			out[idxs[j]] = append([]byte(nil), payload...)
			return nil
		})
		if err != nil {
			return fmt.Errorf("strategy: batch fetch of %s: %w", rel.Name, err)
		}
	}
	return nil
}

// overlayInt returns the snapshot's version of the projected value for
// oid when one exists and the query projects ret1 — the only field
// updates modify, so ret2/ret3 projections never need the overlay.
// Nil snapshot: v unchanged (the serial path pays one nil check).
func overlayInt(snap *txn.Snapshot, oid object.OID, attrIdx int, v int64) int64 {
	if snap == nil || attrIdx != workload.FieldRet1 {
		return v
	}
	if nv, ok := snap.Read(oid); ok {
		return nv
	}
	return v
}

// overlayValues patches a batch of projected values in place with the
// snapshot's versions (out[i] belongs to oids[i]).
func overlayValues(snap *txn.Snapshot, oids []object.OID, attrIdx int, out []int64) {
	if snap == nil || attrIdx != workload.FieldRet1 {
		return
	}
	for i, oid := range oids {
		if v, ok := snap.Read(oid); ok {
			out[i] = v
		}
	}
}

// overlayRec re-encodes a full child record with the snapshot's ret1
// version of oid patched in, when one exists; otherwise the record is
// returned unchanged. DFSCACHE patches materialized records before
// caching them, so a cached value really is current as of the reader's
// snapshot (the cache records that epoch as the entry's M watermark).
func overlayRec(db *workload.DB, snap *txn.Snapshot, oid object.OID, rec []byte) ([]byte, error) {
	if snap == nil {
		return rec, nil
	}
	nv, ok := snap.Read(oid)
	if !ok {
		return rec, nil
	}
	t, err := tuple.Decode(db.ChildSchema, rec)
	if err != nil {
		return nil, err
	}
	t[workload.FieldRet1] = tuple.IntVal(nv)
	return tuple.Encode(nil, db.ChildSchema, t)
}

// ioSpan measures the disk I/O of a code span.
type ioSpan struct {
	db    *workload.DB
	start int64
}

func beginIO(db *workload.DB) ioSpan {
	return ioSpan{db: db, start: db.Disk.Stats().Total()}
}

func (s ioSpan) end() int64 {
	return s.db.Disk.Stats().Total() - s.start
}

// treeKeyedIter adapts a btree iterator to query.KeyedIter for merge
// joins.
type treeKeyedIter struct{ it *btree.Iterator }

func (t treeKeyedIter) Next() (int64, []byte, bool, error) { return t.it.Next() }

// --- cached-unit value codec ---
//
// A cached unit's value is the concatenation of its members' ChildRel
// records, each length-prefixed, in unit order. "Basically, the 'value'
// ... of a subobject is stored with the referencing object" — here with
// the unit (§2.3).

// encodeUnitValue frames member records into one cache value.
func encodeUnitValue(recs [][]byte) []byte {
	n := 0
	for _, r := range recs {
		n += 2 + len(r)
	}
	out := make([]byte, 0, n)
	for _, r := range recs {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(r)))
		out = append(out, l[:]...)
		out = append(out, r...)
	}
	return out
}

// decodeUnitValue yields each framed member record. The callback's rec
// aliases value.
func decodeUnitValue(value []byte, fn func(rec []byte) error) error {
	for len(value) > 0 {
		if len(value) < 2 {
			return fmt.Errorf("strategy: truncated unit value")
		}
		l := int(binary.LittleEndian.Uint16(value))
		value = value[2:]
		if len(value) < l {
			return fmt.Errorf("strategy: truncated unit member record")
		}
		if err := fn(value[:l]); err != nil {
			return err
		}
		value = value[l:]
	}
	return nil
}

// projectUnitValue extracts the query attribute from every member record
// of a cached unit value.
func projectUnitValue(db *workload.DB, value []byte, attrIdx int, out *[]int64) error {
	return decodeUnitValue(value, func(rec []byte) error {
		v, err := tuple.DecodeField(db.ChildSchema, rec, attrIdx)
		if err != nil {
			return err
		}
		*out = append(*out, v.Int)
		return nil
	})
}
