package strategy

import (
	"fmt"

	"corep/internal/catalog"
	"corep/internal/object"
	"corep/internal/query"
	"corep/internal/tuple"
	"corep/internal/workload"
)

// Deep retrieval answers the three-dot query
//
//	retrieve (ParentRel.children.children.attr) where lo ≤ OID ≤ hi
//
// over a two-level database: "Queries involving more than two dots in
// the target list require more levels of relationships to be explored"
// (§3). Three of the flat strategies generalize level-wise:
//
//	DFS       — recursive probing: parent → mid probes → leaf probes
//	BFS       — per-level temporaries and merge joins, duplicates kept
//	BFSNODUP  — duplicates eliminated before each level's join; §5.1
//	            predicts its benefit grows with the number of levels
//	            "but ... the benefit so obtained is marginal at best"
//
// DeepRetrieve is retrieve-only (the extension experiment runs at
// Pr(UPDATE)=0).
func DeepRetrieve(db *workload.TwoLevelDB, kind Kind, q Query) (*Result, error) {
	switch kind {
	case DFS:
		return deepDFS(db, q)
	case BFS:
		return deepBFS(db, q, false)
	case BFSNODUP:
		return deepBFS(db, q, true)
	default:
		return nil, fmt.Errorf("strategy: %v does not support deep retrieval", kind)
	}
}

// midChildren decodes a MidRel tuple's children attribute.
func midChildren(db *workload.TwoLevelDB, payload []byte) ([]object.OID, error) {
	idx := db.ParentSchema.MustIndex("children")
	v, err := tuple.DecodeField(db.ParentSchema, payload, idx)
	if err != nil {
		return nil, err
	}
	return object.DecodeOIDs(v.Raw)
}

func deepDFS(db *workload.TwoLevelDB, q Query) (*Result, error) {
	par := beginIO(db.DB)
	parents, err := scanParents(db.DB, q.Lo, q.Hi)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Split.Par = par.end()

	child := beginIO(db.DB)
	mid, leaf := db.Mid(), db.Leaf()
	for _, p := range parents {
		for _, mo := range p.unit {
			mrec, err := mid.Tree.Get(mo.Key())
			if err != nil {
				return nil, err
			}
			leaves, err := midChildren(db, mrec)
			if err != nil {
				return nil, err
			}
			for _, lo := range leaves {
				lrec, err := leaf.Tree.Get(lo.Key())
				if err != nil {
					return nil, err
				}
				v, err := tuple.DecodeField(db.ChildSchema, lrec, q.AttrIdx)
				if err != nil {
					return nil, err
				}
				res.Values = append(res.Values, v.Int)
			}
		}
	}
	res.Split.Child = child.end()
	return res, nil
}

func deepBFS(db *workload.TwoLevelDB, q Query, dedup bool) (*Result, error) {
	par := beginIO(db.DB)
	parents, err := scanParents(db.DB, q.Lo, q.Hi)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Split.Par = par.end()

	child := beginIO(db.DB)
	defer func() { res.Split.Child = child.end() }()

	// Level 1: mids.
	temp1, err := query.NewInt64Temp(db.Pool)
	if err != nil {
		return nil, err
	}
	for _, p := range parents {
		for _, mo := range p.unit {
			if err := temp1.Append(mo.Key()); err != nil {
				return nil, err
			}
		}
	}
	temp2, err := query.NewInt64Temp(db.Pool)
	if err != nil {
		return nil, err
	}
	err = deepJoin(db, db.Mid(), temp1, dedup, func(payload []byte) error {
		leaves, err := midChildren(db, payload)
		if err != nil {
			return err
		}
		for _, lo := range leaves {
			if err := temp2.Append(lo.Key()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Level 2: leaves.
	return res, deepJoin(db, db.Leaf(), temp2, dedup, func(payload []byte) error {
		v, err := tuple.DecodeField(db.ChildSchema, payload, q.AttrIdx)
		if err != nil {
			return err
		}
		res.Values = append(res.Values, v.Int)
		return nil
	})
}

// deepJoin joins a temp of keys against one relation, with the same
// optimizer choice as the flat BFS (iterative substitution vs sort +
// merge join) and optional duplicate elimination first.
func deepJoin(db *workload.TwoLevelDB, rel *catalog.Relation, tmp *query.Int64Temp, dedup bool, emit func(payload []byte) error) error {
	n := tmp.Count()
	if n == 0 {
		return nil
	}
	if dedup {
		sorted, err := query.SortTemp(db.Pool, tmp, tempValuesPerPage*8)
		if err != nil {
			return err
		}
		distinct, err := query.NewInt64Temp(db.Pool)
		if err != nil {
			return err
		}
		uniq := query.NewDistinct(sorted.Iter())
		for {
			v, ok, err := uniq.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := distinct.Append(v); err != nil {
				return err
			}
		}
		tmp = distinct
		n = tmp.Count()
	}
	tempPages := (n + tempValuesPerPage - 1) / tempValuesPerPage
	probeCost := int64(n) * int64(rel.Tree.Height())
	mergeCost := int64(sortPassFactor*tempPages) + int64(rel.Tree.LeafPages())
	if probeCost <= mergeCost {
		return tmp.Scan(func(key int64) (bool, error) {
			rec, err := rel.Tree.Get(key)
			if err != nil {
				return false, err
			}
			return true, emit(rec)
		})
	}
	outer := tmp
	if !dedup {
		sorted, err := query.SortTemp(db.Pool, tmp, tempValuesPerPage*8)
		if err != nil {
			return err
		}
		outer = sorted
	}
	it, err := rel.Tree.SeekFirst()
	if err != nil {
		return err
	}
	defer it.Close()
	return query.MergeJoin(db.Obs, outer.Iter(), treeKeyedIter{it}, func(_ int64, payload []byte) (bool, error) {
		return true, emit(payload)
	})
}
