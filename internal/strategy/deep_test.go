package strategy

import (
	"testing"

	"corep/internal/workload"
)

func buildTwoLevel(t *testing.T, cfg workload.TwoLevelConfig) *workload.TwoLevelDB {
	t.Helper()
	db, err := workload.BuildTwoLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDeepStrategiesAgree(t *testing.T) {
	db := buildTwoLevel(t, workload.TwoLevelConfig{
		Config: workload.Config{NumParents: 200, SizeUnit: 3, UseFactor: 2, Seed: 17},
	})
	queries := []Query{
		{Lo: 0, Hi: 0, AttrIdx: workload.FieldRet1},
		{Lo: 10, Hi: 39, AttrIdx: workload.FieldRet2},
		{Lo: 0, Hi: 199, AttrIdx: workload.FieldRet3},
	}
	for _, q := range queries {
		ref, err := DeepRetrieve(db, DFS, q)
		if err != nil {
			t.Fatal(err)
		}
		// Each parent contributes SizeUnit mids × SizeUnit leaves.
		if want := q.NumTop() * 3 * 3; len(ref.Values) != want {
			t.Fatalf("DFS returned %d values, want %d", len(ref.Values), want)
		}
		bfs, err := DeepRetrieve(db, BFS, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlices(sortedCopy(bfs.Values), sortedCopy(ref.Values)) {
			t.Fatalf("deep BFS disagrees with deep DFS on %+v", q)
		}
		nd, err := DeepRetrieve(db, BFSNODUP, q)
		if err != nil {
			t.Fatal(err)
		}
		// NODUP eliminates duplicates level-wise; its distinct values
		// must equal the distinct values of the full answer.
		if !equalSlices(dedup(nd.Values), dedup(ref.Values)) {
			t.Fatalf("deep BFSNODUP set differs on %+v", q)
		}
	}
}

func TestDeepUnsupportedKinds(t *testing.T) {
	db := buildTwoLevel(t, workload.TwoLevelConfig{
		Config: workload.Config{NumParents: 100, SizeUnit: 2, UseFactor: 2, Seed: 3},
	})
	for _, k := range []Kind{DFSCACHE, DFSCLUST, SMART} {
		if _, err := DeepRetrieve(db, k, Query{Lo: 0, Hi: 5, AttrIdx: 1}); err == nil {
			t.Fatalf("%v accepted for deep retrieval", k)
		}
	}
}

func TestDeepNoDupActuallyDedups(t *testing.T) {
	// With heavy sharing at both levels, NODUP must fetch far fewer
	// leaves than BFS touches.
	db := buildTwoLevel(t, workload.TwoLevelConfig{
		Config:        workload.Config{NumParents: 400, SizeUnit: 4, UseFactor: 4, Seed: 5},
		LeafUseFactor: 4,
	})
	q := Query{Lo: 0, Hi: 199, AttrIdx: workload.FieldRet1}
	full, err := DeepRetrieve(db, BFS, q)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := DeepRetrieve(db, BFSNODUP, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(nd.Values) >= len(full.Values) {
		t.Fatalf("NODUP kept %d of %d values", len(nd.Values), len(full.Values))
	}
}

func TestDeepPinHygiene(t *testing.T) {
	db := buildTwoLevel(t, workload.TwoLevelConfig{
		Config: workload.Config{NumParents: 150, SizeUnit: 3, UseFactor: 3, Seed: 9},
	})
	for _, k := range []Kind{DFS, BFS, BFSNODUP} {
		if _, err := DeepRetrieve(db, k, Query{Lo: 5, Hi: 80, AttrIdx: workload.FieldRet2}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if n := db.Pool.PinnedCount(); n != 0 {
			t.Fatalf("%v leaked %d pins", k, n)
		}
	}
}
