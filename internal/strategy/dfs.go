package strategy

import (
	"corep/internal/object"
	"corep/internal/workload"
)

// dfs is the plain depth-first strategy (§3.1 [1]): "For each OID of
// 'elders', fetch the corresponding subobject from the relation person,
// and return its name." It is an index nested-loop join between
// ParentRel and ChildRel, so its child cost grows linearly with NumTop.
type dfs struct{}

func (dfs) Kind() Kind { return DFS }

func (dfs) Retrieve(db *workload.DB, q Query) (*Result, error) {
	par := beginIO(db)
	scanSp := db.Obs.Start("strategy.dfs/scan")
	parents, err := scanParents(db, q.Lo, q.Hi)
	if err != nil {
		return nil, err
	}
	scanSp.SetAttr("parents", int64(len(parents)))
	scanSp.End()
	res := &Result{}
	res.Split.Par = par.end()

	child := beginIO(db)
	probeSp := db.Obs.Start("strategy.dfs/probe")
	// Flatten the qualifying parents' child OIDs and probe them in one
	// page-ordered batch; the output order is the per-OID loop's.
	var oids []object.OID
	for _, p := range parents {
		oids = append(oids, p.unit...)
	}
	if len(oids) > 0 {
		res.Values = make([]int64, len(oids))
		if err := fetchChildAttrs(db, oids, q.AttrIdx, res.Values); err != nil {
			return nil, err
		}
		overlayValues(q.Snap, oids, q.AttrIdx, res.Values)
	}
	probeSp.SetAttr("values", int64(len(res.Values)))
	probeSp.End()
	res.Split.Child = child.end()
	return res, nil
}

func (dfs) Update(db *workload.DB, op workload.Op) error {
	if db.Versions != nil {
		return db.ApplyUpdateVersioned(op, nil)
	}
	return db.ApplyUpdateBase(op)
}
