package strategy

import (
	"corep/internal/disk"
	"corep/internal/object"
	"corep/internal/workload"
)

// dfscache is depth-first search in the presence of caching (§3.2):
// "Check if the value of the subobjects of 'elders' is cached. If so,
// fetch the attribute name from the cache. Otherwise, fetch the
// subobjects from the person relation (this is called materialization),
// cache their values, and return the attribute name."
//
// The strategy maintains the cache: freshly materialized units are
// inserted (outside caching — shared across every parent referencing
// the unit), and updates invalidate via I-locks.
//
// With inside set, the cache key is salted with the referencing parent's
// OID, so each parent owns a private entry and nothing is shared —
// inside caching (§2.3), kept as an ablation.
type dfscache struct {
	inside bool
}

func (c dfscache) Kind() Kind {
	if c.inside {
		return DFSCACHEINSIDE
	}
	return DFSCACHE
}

// cacheUnit derives the caching key material for a parent's unit.
func (c dfscache) cacheUnit(db *workload.DB, p parentRef) object.Unit {
	if !c.inside {
		return object.Unit(p.unit)
	}
	salted := make(object.Unit, 0, len(p.unit)+1)
	salted = append(salted, object.NewOID(db.Parent.ID, p.key))
	return append(salted, p.unit...)
}

func (c dfscache) Retrieve(db *workload.DB, q Query) (*Result, error) {
	par := beginIO(db)
	scanSp := db.Obs.Start("strategy.dfscache/scan")
	parents, err := scanParents(db, q.Lo, q.Hi)
	if err != nil {
		return nil, err
	}
	scanSp.SetAttr("parents", int64(len(parents)))
	scanSp.End()
	res := &Result{}
	res.Split.Par = par.end()

	child := beginIO(db)
	probeSp := db.Obs.Start("strategy.dfscache/probe")
	var cacheHits, materialized int64
	for _, p := range parents {
		unit := p.unit
		key := c.cacheUnit(db, p)
		// Snapshot epoch 0 (nil Snap) is the historic unversioned path;
		// under versioned serving the epoch gates hits on the cache's
		// update watermarks (see cache/version.go).
		value, ok, err := db.Cache.LookupSnap(key, q.Snap.Epoch())
		if err != nil {
			return nil, err
		}
		if ok {
			cacheHits++
			if err := projectUnitValue(db, value, q.AttrIdx, &res.Values); err != nil {
				return nil, err
			}
			continue
		}
		// Materialize the unit with one page-ordered batch, answer from
		// it, and cache it. Under a snapshot, base records are patched
		// with the version overlay first: the cached value must really be
		// current as of the epoch recorded with the entry.
		materialized++
		recs := make([][]byte, len(unit))
		if err := fetchChildRecs(db, unit, recs); err != nil {
			return nil, err
		}
		if q.Snap != nil {
			for i, oid := range unit {
				if recs[i], err = overlayRec(db, q.Snap, oid, recs[i]); err != nil {
					return nil, err
				}
			}
		}
		value = encodeUnitValue(recs)
		if err := projectUnitValue(db, value, q.AttrIdx, &res.Values); err != nil {
			return nil, err
		}
		if err := db.Cache.InsertSnap(key, value, q.Snap.Epoch()); err != nil && !disk.IsFault(err) {
			// A faulted insert only means the unit isn't cached; the rows
			// are already materialized, so degrade and keep answering.
			return nil, err
		}
	}
	probeSp.SetAttr("cache_hits", cacheHits)
	probeSp.SetAttr("materialized", materialized)
	probeSp.End()
	res.Split.Child = child.end()
	return res, nil
}

func (dfscache) Update(db *workload.DB, op workload.Op) error {
	if db.Versions != nil {
		// Version-aware invalidation: the watermarks advance inside the
		// commit critical section — before the epoch publishes — so no
		// snapshot at or past it can hit a stale entry. The Invalidate
		// sweep afterwards reclaims the dead entries' hash-file space,
		// paying the paper's invalidation I/O outside the publish lock;
		// correctness never depends on the sweep (watermarked entries can
		// never hit again).
		if err := db.ApplyUpdateVersioned(op, func(e uint64) {
			db.Cache.MarkInvalid(op.Targets, e)
		}); err != nil {
			return err
		}
		var invErr error
		for _, oid := range op.Targets {
			if _, err := db.Cache.Invalidate(oid); err != nil && invErr == nil {
				invErr = err
			}
		}
		return invErr
	}
	baseErr := db.ApplyUpdateBase(op)
	// I-lock invalidation: every cached unit containing an updated
	// subobject is dropped, paying hash-file deletes. This runs even
	// when the base apply failed part-way — some targets may already
	// hold new values, so every touched unit must leave the cache or a
	// later lookup would serve the old value.
	var invErr error
	for _, oid := range op.Targets {
		if _, err := db.Cache.Invalidate(oid); err != nil && invErr == nil {
			invErr = err
		}
	}
	if baseErr != nil {
		return baseErr
	}
	return invErr
}
