package strategy

import (
	"fmt"

	"corep/internal/buffer"
	"corep/internal/disk"
	"corep/internal/object"
	"corep/internal/storage"
	"corep/internal/tuple"
	"corep/internal/workload"
)

// dfsclust is depth-first search in the presence of clustering (§3.3):
// the qualifying range of ClusterRel is scanned by cluster#. Rows with
// the same cluster# form one physical group — a parent followed by the
// subobjects clustered with it — so a parent's home subobjects cost no
// extra I/O. Subobjects living elsewhere are fetched, as each group
// completes, with a random access through the static ISAM index on
// ClusterRel.OID; whether that access really hits the disk is the
// buffer pool's honest decision (nearby groups are still buffered,
// distant ones are not).
//
// The scan cost grows as clustering approaches ideal (more child tuples
// ride inside the parent range — the ParCost increase of Figure 5a),
// while the random accesses shrink; with OverlapFactor > 1 units
// fragment and the random accesses multiply (Figure 7).
type dfsclust struct{}

func (dfsclust) Kind() Kind { return DFSCLUST }

func (dfsclust) Retrieve(db *workload.DB, q Query) (*Result, error) {
	parentRelID := db.Parent.ID
	oidIdx := db.ClusterSchema.MustIndex("OID")
	childrenIdx := db.ClusterSchema.MustIndex("children")
	// In ClusterSchema the ret fields sit one position later than in
	// ChildSchema (cluster# occupies field 0).
	attrIdx := q.AttrIdx + 1

	res := &Result{}
	var scanIO, fetchIO int64
	// Scan and fetch interleave per cluster group, so one span covers the
	// whole retrieve; the ParCost/ChildCost split travels as attributes.
	// The parent range rides along too — the reclustering heat tracker
	// feeds on it through the span sink.
	sp := db.Obs.Start("strategy.dfsclust/retrieve")
	defer func() {
		sp.SetAttr("lo", q.Lo)
		sp.SetAttr("hi", q.Hi)
		sp.SetAttr("par_io", scanIO)
		sp.SetAttr("child_io", fetchIO)
		sp.SetAttr("values", int64(len(res.Values)))
		sp.End()
	}()

	// Online reclustering, when enabled, may have migrated some of this
	// range's units onto shared extent pages; the placement map is
	// consulted per key below, at the reader's snapshot epoch.
	rs := db.Reclust
	snapE := q.Snap.Epoch()

	// One cluster# group: the parent's unit and the locally clustered
	// subobject values.
	var (
		unit   []object.OID
		local  = map[object.OID]int64{}
		hasPar = false
		curKey = int64(-1)
	)
	// resolve answers the current group, charging index/data fetches to
	// ChildCost. With a prefetcher attached it resolves the group's
	// non-local probes through the ISAM index first: the RIDs' data pages,
	// deduplicated in first-occurrence order, become the prefetch plan, so
	// upcoming fetches stage while the current ones are consumed.
	resolve := func() error {
		if !hasPar {
			return nil
		}
		span := beginIO(db)
		var (
			ch     *buffer.Chain
			rids   map[object.OID]storage.RID
			placed map[object.OID]storage.RID
		)
		if rs != nil {
			for _, oid := range unit {
				if _, ok := local[oid]; ok {
					continue
				}
				if e, ok := rs.Place.Lookup(oid, snapE); ok {
					if placed == nil {
						placed = map[object.OID]storage.RID{}
					}
					placed[oid] = e.RID
				}
			}
		}
		if pf := db.Pool.Prefetcher(); pf != nil {
			var keys []int64
			seen := map[disk.PageID]bool{}
			var plan []disk.PageID
			for _, oid := range unit {
				if _, ok := local[oid]; ok {
					continue
				}
				// Migrated members' pages are known without an index
				// probe: they lead the prefetch plan.
				if prid, ok := placed[oid]; ok {
					if !seen[prid.Page] {
						seen[prid.Page] = true
						plan = append(plan, prid.Page)
					}
					continue
				}
				keys = append(keys, int64(oid))
			}
			if len(keys) > 1 {
				rr, err := db.ClusterRel.Index.ProbeBatch(keys)
				if err != nil {
					return fmt.Errorf("strategy: clustered probe batch: %w", err)
				}
				rids = make(map[object.OID]storage.RID, len(keys))
				for i, rid := range rr {
					rids[object.OID(keys[i])] = rid
					if !seen[rid.Page] {
						seen[rid.Page] = true
						plan = append(plan, rid.Page)
					}
				}
			}
			if len(plan) > 1 {
				psp := db.Obs.Start("prefetch.probeplan")
				psp.SetAttr("pages", int64(len(plan)))
				psp.End()
				ch = pf.Start(plan)
				defer ch.Finish()
			}
		}
		for _, oid := range unit {
			if v, ok := local[oid]; ok {
				res.Values = append(res.Values, overlayInt(q.Snap, oid, q.AttrIdx, v))
				continue
			}
			if prid, ok := placed[oid]; ok {
				payload, err := rs.Read(prid)
				if err != nil {
					return err
				}
				ch.Consumed(prid.Page)
				av, err := tuple.DecodeField(db.ClusterSchema, payload, attrIdx)
				if err != nil {
					return err
				}
				res.Values = append(res.Values, overlayInt(q.Snap, oid, q.AttrIdx, av.Int))
				continue
			}
			rid, ok := rids[oid]
			if !ok {
				var err error
				rid, err = db.ClusterRel.Index.Probe(int64(oid))
				if err != nil {
					return fmt.Errorf("strategy: clustered subobject %v: %w", oid, err)
				}
			}
			_, payload, err := db.ClusterRel.Tree.GetAt(rid)
			if err != nil {
				return err
			}
			ch.Consumed(rid.Page)
			av, err := tuple.DecodeField(db.ClusterSchema, payload, attrIdx)
			if err != nil {
				return err
			}
			res.Values = append(res.Values, overlayInt(q.Snap, oid, q.AttrIdx, av.Int))
		}
		fetchIO += span.end()
		return nil
	}

	var scanSpan ioSpan
	scanCB := func(key int64, payload []byte) (bool, error) {
		if key != curKey {
			scanIO += scanSpan.end()
			if err := resolve(); err != nil {
				return false, err
			}
			unit, hasPar = nil, false
			local = map[object.OID]int64{}
			curKey = key
			scanSpan = beginIO(db)
		}
		ov, err := tuple.DecodeField(db.ClusterSchema, payload, oidIdx)
		if err != nil {
			return false, err
		}
		oid := object.OID(ov.Int)
		if oid.Rel() == parentRelID {
			cv, err := tuple.DecodeField(db.ClusterSchema, payload, childrenIdx)
			if err != nil {
				return false, err
			}
			oids, err := object.DecodeOIDs(cv.Raw)
			if err != nil {
				return false, err
			}
			unit = oids
			hasPar = true
			return true, nil
		}
		av, err := tuple.DecodeField(db.ClusterSchema, payload, attrIdx)
		if err != nil {
			return false, err
		}
		local[oid] = av.Int
		return true, nil
	}
	// scanRun range-scans ClusterRel over a contiguous run of cluster#
	// keys and flushes the final group — the historic whole-query scan is
	// scanRun(q.Lo, q.Hi).
	scanRun := func(a, b int64) error {
		scanSpan = beginIO(db)
		err := db.ClusterRel.Tree.Range(a, b, scanCB)
		if err != nil {
			return err
		}
		scanIO += scanSpan.end()
		if err := resolve(); err != nil {
			return err
		}
		unit, hasPar, curKey = nil, false, -1
		local = map[object.OID]int64{}
		return nil
	}

	if rs == nil {
		if err := scanRun(q.Lo, q.Hi); err != nil {
			return nil, err
		}
	} else {
		// A parent whose whole unit has migrated serves straight off the
		// extent: the parent row's copy carries the children list, the
		// members resolve through their placements, and the B-tree scan
		// skips the key entirely. Residual runs of un-migrated keys scan
		// as before, so placed and scanned groups interleave in key
		// order — result order matches the historic scan exactly.
		pending := int64(-1)
		for k := q.Lo; k <= q.Hi; k++ {
			e, ok := rs.Place.Lookup(object.NewOID(parentRelID, k), snapE)
			if !ok {
				if pending < 0 {
					pending = k
				}
				continue
			}
			if pending >= 0 {
				if err := scanRun(pending, k-1); err != nil {
					return nil, err
				}
				pending = -1
			}
			span := beginIO(db)
			payload, err := rs.Read(e.RID)
			if err != nil {
				return nil, err
			}
			cv, err := tuple.DecodeField(db.ClusterSchema, payload, childrenIdx)
			if err != nil {
				return nil, err
			}
			oids, err := object.DecodeOIDs(cv.Raw)
			if err != nil {
				return nil, err
			}
			scanIO += span.end()
			unit, hasPar, curKey = oids, true, k
			if err := resolve(); err != nil {
				return nil, err
			}
			unit, hasPar, curKey = nil, false, -1
		}
		if pending >= 0 {
			if err := scanRun(pending, q.Hi); err != nil {
				return nil, err
			}
		}
	}
	res.Split.Par = scanIO
	res.Split.Child = fetchIO
	return res, nil
}

func (dfsclust) Update(db *workload.DB, op workload.Op) error {
	if db.Versions != nil {
		return db.ApplyUpdateVersioned(op, nil)
	}
	return db.ApplyUpdateCluster(op)
}
