package strategy

import (
	"sort"

	"corep/internal/object"
	"corep/internal/query"
	"corep/internal/tuple"
	"corep/internal/workload"
)

// smart is the hybrid of §5.3: "When the query has a low NumTop, use
// DFSCACHE, and maintain the cache. However, if NumTop > N …, use a
// breadth-first strategy, and do not try to maintain cache. In other
// words, scan the NumTop tuples and collect into temp the OID's whose
// units are not cached; and then implement the merge-join. The status of
// the cache remains invariant during the execution of the breadth-first
// strategy."
type smart struct {
	threshold int // N
}

func (smart) Kind() Kind { return SMART }

func (s smart) Retrieve(db *workload.DB, q Query) (*Result, error) {
	if q.NumTop() <= s.threshold {
		return dfscache{}.Retrieve(db, q)
	}

	par := beginIO(db)
	scanSp := db.Obs.Start("strategy.smart/scan")
	parents, err := scanParents(db, q.Lo, q.Hi)
	if err != nil {
		return nil, err
	}
	scanSp.SetAttr("parents", int64(len(parents)))
	scanSp.End()
	res := &Result{}
	res.Split.Par = par.end()

	child := beginIO(db)
	bfSp := db.Obs.Start("strategy.smart/bfpass")
	defer bfSp.End()
	// Cached units answer depth-first (one hash probe each); the rest
	// feed per-relation temporaries for merge joins.
	temps := make(map[uint16]*query.Int64Temp)
	var relOrder []uint16
	for _, p := range parents {
		unit := p.unit
		if db.Cache.IsCached(unit) {
			value, ok, err := db.Cache.LookupSnap(unit, q.Snap.Epoch())
			if err != nil {
				return nil, err
			}
			if ok {
				if err := projectUnitValue(db, value, q.AttrIdx, &res.Values); err != nil {
					return nil, err
				}
				continue
			}
		}
		for _, oid := range unit {
			tmp := temps[oid.Rel()]
			if tmp == nil {
				tmp, err = query.NewInt64Temp(db.Pool)
				if err != nil {
					return nil, err
				}
				temps[oid.Rel()] = tmp
				relOrder = append(relOrder, oid.Rel())
			}
			if err := tmp.Append(oid.Key()); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(relOrder, func(i, j int) bool { return relOrder[i] < relOrder[j] })
	for _, relID := range relOrder {
		rel, err := db.ChildByRelID(relID)
		if err != nil {
			return nil, err
		}
		sorted, err := query.SortTemp(db.Pool, temps[relID], tempValuesPerPage*8)
		if err != nil {
			return nil, err
		}
		it, err := rel.Tree.SeekFirst()
		if err != nil {
			return nil, err
		}
		finish := func() {}
		if mx, ok := sorted.Max(); ok {
			finish = rel.Tree.AttachChainPrefetch(it, mx)
		}
		err = query.MergeJoin(db.Obs, sorted.Iter(), treeKeyedIter{it}, func(key int64, payload []byte) (bool, error) {
			v, err := tuple.DecodeField(db.ChildSchema, payload, q.AttrIdx)
			if err != nil {
				return false, err
			}
			res.Values = append(res.Values, overlayInt(q.Snap, object.NewOID(rel.ID, key), q.AttrIdx, v.Int))
			return true, nil
		})
		finish()
		it.Close()
		if err != nil {
			return nil, err
		}
	}
	res.Split.Child = child.end()
	return res, nil
}

func (smart) Update(db *workload.DB, op workload.Op) error {
	return dfscache{}.Update(db, op)
}
