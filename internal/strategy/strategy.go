// Package strategy implements the paper's query-processing strategies
// for the OID representation (Figure 2):
//
//	DFS       — depth-first: per-parent index probes into ChildRel
//	BFS       — breadth-first: temp of OIDs, then iterative substitution
//	            or sort + merge join, whichever the optimizer estimates
//	            cheaper (§3.1)
//	BFSNODUP  — BFS with duplicate elimination on the temp (§3.1 [3])
//	DFSCACHE  — DFS consulting and maintaining the outside value cache
//	            (§3.2)
//	DFSCLUST  — DFS over ClusterRel: clustered subobjects ride along the
//	            parent scan, the rest are fetched via the ISAM OID index
//	            (§3.3)
//	SMART     — DFSCACHE below a NumTop threshold, above it a
//	            breadth-first pass whose temp skips cached units and
//	            which does not maintain the cache (§5.3)
//
// All strategies answer the same query shape,
//
//	retrieve (ParentRel.children.attr) where lo ≤ ParentRel.OID ≤ hi,
//
// and apply the same update ops; their I/O cost is the experiment.
package strategy

import (
	"errors"
	"fmt"

	"corep/internal/txn"
	"corep/internal/workload"
)

// Kind enumerates the strategies.
type Kind uint8

// Strategy kinds, in the paper's order.
const (
	DFS Kind = iota
	BFS
	BFSNODUP
	DFSCACHE
	DFSCLUST
	SMART
	// DFSCACHEINSIDE is an ablation beyond the paper's Figure 2: inside
	// caching, where each referencing object gets its own cache entry and
	// nothing is shared. [JHIN88] (and §3.2's argument) predict it loses
	// to outside caching once units are shared; the abl-inside bench
	// reproduces that.
	DFSCACHEINSIDE
)

// Planned identifies the cost-based planner's adaptive dispatcher
// (internal/planner), which picks one of the static kinds per query. It
// is not itself a static strategy: it never appears in AllKinds and
// strategy.New rejects it — construct it with planner.NewPlanned.
const Planned Kind = 255

// AllKinds lists every strategy.
var AllKinds = []Kind{DFS, BFS, BFSNODUP, DFSCACHE, DFSCLUST, SMART}

// AllKindsWithAblations additionally includes the strategies that go
// beyond the paper's Figure 2.
var AllKindsWithAblations = append(append([]Kind(nil), AllKinds...), DFSCACHEINSIDE)

func (k Kind) String() string {
	switch k {
	case DFS:
		return "DFS"
	case BFS:
		return "BFS"
	case BFSNODUP:
		return "BFSNODUP"
	case DFSCACHE:
		return "DFSCACHE"
	case DFSCLUST:
		return "DFSCLUST"
	case SMART:
		return "SMART"
	case DFSCACHEINSIDE:
		return "DFSCACHE-INSIDE"
	case Planned:
		return "PLANNED"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Query is one retrieve: parents with lo ≤ key ≤ hi, projecting the
// subobject attribute at AttrIdx (workload.FieldRet1..3).
type Query struct {
	Lo, Hi  int64
	AttrIdx int

	// Snap, when non-nil, is the versioned-serving snapshot this
	// retrieve reads at: projected ret1 values are overlaid with the
	// newest version at or under its epoch, and cache traffic carries
	// the epoch for watermark checks. Nil — every single-threaded and
	// latched path — reads the base layout exactly as before.
	Snap *txn.Snapshot
}

// NumTop returns the number of parents the query selects.
func (q Query) NumTop() int { return int(q.Hi - q.Lo + 1) }

// CostSplit separates a retrieve's I/O into the cost of accessing
// ParentRel tuples (ParCost) and the cost of fetching subobjects
// (ChildCost) — the decomposition behind Figure 5.
type CostSplit struct {
	Par   int64
	Child int64
}

// Total returns Par + Child.
func (c CostSplit) Total() int64 { return c.Par + c.Child }

// Add accumulates another split.
func (c *CostSplit) Add(o CostSplit) { c.Par += o.Par; c.Child += o.Child }

// Result is a retrieve's output: one projected value per (parent,
// subobject) pair — except under BFSNODUP, which eliminates duplicate
// subobjects — plus the measured cost split.
type Result struct {
	Values []int64
	Split  CostSplit
}

// Strategy executes retrieves and updates against a workload database.
type Strategy interface {
	Kind() Kind
	// Retrieve answers q, charging I/O to db's disk.
	Retrieve(db *workload.DB, q Query) (*Result, error)
	// Update applies op through this strategy's layout, including any
	// cache maintenance it implies.
	Update(db *workload.DB, op workload.Op) error
}

// Errors returned by New.
var (
	ErrNeedsCache   = errors.New("strategy: database built without a cache")
	ErrNeedsCluster = errors.New("strategy: database built without ClusterRel")
)

// DefaultSmartThreshold is N of §5.3 ("N=300 in our experiments").
const DefaultSmartThreshold = 300

// New constructs a strategy of the given kind for db, validating that
// the database has the structures the strategy needs.
func New(kind Kind, db *workload.DB) (Strategy, error) {
	switch kind {
	case DFS:
		return dfs{}, nil
	case BFS:
		return bfs{dedup: false}, nil
	case BFSNODUP:
		return bfs{dedup: true}, nil
	case DFSCACHE:
		if db.Cache == nil {
			return nil, ErrNeedsCache
		}
		return dfscache{}, nil
	case DFSCLUST:
		if db.ClusterRel == nil {
			return nil, ErrNeedsCluster
		}
		return dfsclust{}, nil
	case SMART:
		if db.Cache == nil {
			return nil, ErrNeedsCache
		}
		return smart{threshold: DefaultSmartThreshold}, nil
	case DFSCACHEINSIDE:
		if db.Cache == nil {
			return nil, ErrNeedsCache
		}
		return dfscache{inside: true}, nil
	}
	return nil, fmt.Errorf("strategy: unknown kind %d", kind)
}

// NewSmart constructs SMART with an explicit NumTop threshold.
func NewSmart(db *workload.DB, threshold int) (Strategy, error) {
	if db.Cache == nil {
		return nil, ErrNeedsCache
	}
	return smart{threshold: threshold}, nil
}
