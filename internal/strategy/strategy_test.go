package strategy

import (
	"errors"
	"sort"
	"testing"

	"corep/internal/testutil"
	"corep/internal/workload"
)

// buildDB creates a small database with every structure (cache +
// cluster) so all strategies can run against it.
func buildDB(t *testing.T, cfg workload.Config) *workload.DB {
	t.Helper()
	cfg.Clustered = true
	if cfg.CacheUnits == 0 {
		cfg.CacheUnits = 100
	}
	db, err := workload.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { testutil.AssertNoLeaks(t, db.Pool) })
	return db
}

func smallCfg() workload.Config {
	return workload.Config{NumParents: 300, SizeUnit: 5, UseFactor: 3, OverlapFactor: 1, Seed: 11}
}

func mustNew(t *testing.T, k Kind, db *workload.DB) Strategy {
	t.Helper()
	s, err := New(k, db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sortedCopy(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedup(v []int64) []int64 {
	s := sortedCopy(v)
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return append([]int64(nil), out...)
}

func equalSlices(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllStrategiesAgree(t *testing.T) {
	// The central correctness property: every strategy answers every
	// query with the same multiset of values (BFSNODUP: the same set).
	db := buildDB(t, smallCfg())
	queries := []Query{
		{Lo: 0, Hi: 0, AttrIdx: workload.FieldRet1},
		{Lo: 10, Hi: 19, AttrIdx: workload.FieldRet2},
		{Lo: 0, Hi: 299, AttrIdx: workload.FieldRet3},
		{Lo: 250, Hi: 299, AttrIdx: workload.FieldRet1},
	}
	for _, q := range queries {
		ref, err := mustNew(t, DFS, db).Retrieve(db, q)
		if err != nil {
			t.Fatal(err)
		}
		want := sortedCopy(ref.Values)
		if len(want) != q.NumTop()*db.Cfg.SizeUnit {
			t.Fatalf("DFS returned %d values for NumTop=%d", len(want), q.NumTop())
		}
		for _, k := range []Kind{BFS, DFSCACHE, DFSCLUST, SMART} {
			got, err := mustNew(t, k, db).Retrieve(db, q)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if !equalSlices(sortedCopy(got.Values), want) {
				t.Fatalf("%v disagrees with DFS on %+v: %d vs %d values",
					k, q, len(got.Values), len(want))
			}
		}
		nd, err := mustNew(t, BFSNODUP, db).Retrieve(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlices(sortedCopy(nd.Values), dedup(ref.Values)) {
			t.Fatalf("BFSNODUP set differs on %+v", q)
		}
	}
}

func TestAgreementWithOverlap(t *testing.T) {
	cfg := workload.Config{NumParents: 200, SizeUnit: 5, UseFactor: 1, OverlapFactor: 5, Seed: 23}
	db := buildDB(t, cfg)
	q := Query{Lo: 20, Hi: 79, AttrIdx: workload.FieldRet2}
	ref, err := mustNew(t, DFS, db).Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(ref.Values)
	for _, k := range []Kind{BFS, DFSCACHE, DFSCLUST, SMART} {
		got, err := mustNew(t, k, db).Retrieve(db, q)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !equalSlices(sortedCopy(got.Values), want) {
			t.Fatalf("%v disagrees with DFS under overlap", k)
		}
	}
}

func TestAgreementWithMultipleChildRels(t *testing.T) {
	cfg := workload.Config{NumParents: 200, SizeUnit: 5, UseFactor: 2, NumChildRel: 3, Seed: 31}
	db := buildDB(t, cfg)
	q := Query{Lo: 0, Hi: 99, AttrIdx: workload.FieldRet1}
	ref, err := mustNew(t, DFS, db).Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(ref.Values)
	for _, k := range []Kind{BFS, DFSCACHE, DFSCLUST, SMART} {
		got, err := mustNew(t, k, db).Retrieve(db, q)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !equalSlices(sortedCopy(got.Values), want) {
			t.Fatalf("%v disagrees with DFS across child relations", k)
		}
	}
}

func TestCacheCoherenceAfterUpdates(t *testing.T) {
	// DFSCACHE must never serve stale values: warm the cache, update
	// subobjects, re-query, and compare against uncached DFS.
	db := buildDB(t, smallCfg())
	sc := mustNew(t, DFSCACHE, db)
	sd := mustNew(t, DFS, db)
	q := Query{Lo: 0, Hi: 49, AttrIdx: workload.FieldRet1}

	if _, err := sc.Retrieve(db, q); err != nil { // warm cache
		t.Fatal(err)
	}
	if db.Cache.Len() == 0 {
		t.Fatal("cache not maintained")
	}
	// Update some subobjects of the warmed range.
	op := workload.Op{Kind: workload.OpUpdate}
	for i := int64(0); i < 20; i++ {
		u := db.UnitOf(i)
		op.Targets = append(op.Targets, u[0])
		op.NewRet1 = append(op.NewRet1, 1_000_000+i)
	}
	if err := sc.Update(db, op); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sd.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlices(sortedCopy(got.Values), sortedCopy(want.Values)) {
		t.Fatal("DFSCACHE served stale values after updates")
	}
	if err := db.Cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterCoherenceAfterUpdates(t *testing.T) {
	// Updates applied through both layouts keep DFSCLUST and DFS in
	// agreement.
	db := buildDB(t, smallCfg())
	cl := mustNew(t, DFSCLUST, db)
	d := mustNew(t, DFS, db)
	ops := db.GenSequence(0, 0, 1) // none; craft update explicitly
	_ = ops
	op := workload.Op{Kind: workload.OpUpdate}
	for i := int64(0); i < 10; i++ {
		u := db.UnitOf(i * 3)
		op.Targets = append(op.Targets, u[i%5])
		op.NewRet1 = append(op.NewRet1, 2_000_000+i)
	}
	// Apply through both layouts (they are separate copies of the data).
	if err := cl.Update(db, op); err != nil {
		t.Fatal(err)
	}
	if err := d.Update(db, op); err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: 0, Hi: 59, AttrIdx: workload.FieldRet1}
	a, err := cl.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlices(sortedCopy(a.Values), sortedCopy(b.Values)) {
		t.Fatal("DFSCLUST diverged from DFS after updates")
	}
}

func TestDFSCACHEHitsOnRepeat(t *testing.T) {
	db := buildDB(t, smallCfg())
	s := mustNew(t, DFSCACHE, db)
	q := Query{Lo: 0, Hi: 9, AttrIdx: workload.FieldRet1}
	if _, err := s.Retrieve(db, q); err != nil {
		t.Fatal(err)
	}
	before := db.Cache.Stats()
	if _, err := s.Retrieve(db, q); err != nil {
		t.Fatal(err)
	}
	delta := db.Cache.Stats().Sub(before)
	if delta.Misses != 0 {
		t.Fatalf("repeat query missed cache %d times", delta.Misses)
	}
	if delta.Hits == 0 {
		t.Fatal("repeat query never hit cache")
	}
}

func TestCachedRepeatIsCheaper(t *testing.T) {
	db := buildDB(t, smallCfg())
	s := mustNew(t, DFSCACHE, db)
	q := Query{Lo: 100, Hi: 139, AttrIdx: workload.FieldRet2}
	first, err := s.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ResetCold(); err != nil { // cold pool, warm cache
		t.Fatal(err)
	}
	second, err := s.Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Split.Child >= first.Split.Child {
		t.Fatalf("cached repeat not cheaper: %d vs %d child I/Os",
			second.Split.Child, first.Split.Child)
	}
}

func TestSmartSwitchesStrategy(t *testing.T) {
	db := buildDB(t, smallCfg())
	s, err := NewSmart(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: cache is maintained.
	if _, err := s.Retrieve(db, Query{Lo: 0, Hi: 9, AttrIdx: workload.FieldRet1}); err != nil {
		t.Fatal(err)
	}
	if db.Cache.Len() == 0 {
		t.Fatal("SMART below threshold did not maintain cache")
	}
	size := db.Cache.Len()
	// Above threshold: cache contents stay invariant.
	if _, err := s.Retrieve(db, Query{Lo: 0, Hi: 199, AttrIdx: workload.FieldRet1}); err != nil {
		t.Fatal(err)
	}
	if db.Cache.Len() != size {
		t.Fatalf("SMART above threshold changed cache size %d → %d", size, db.Cache.Len())
	}
}

func TestStrategyRequirements(t *testing.T) {
	db, err := workload.Build(smallCfg()) // no cache, no cluster
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DFSCACHE, db); !errors.Is(err, ErrNeedsCache) {
		t.Fatalf("DFSCACHE: %v", err)
	}
	if _, err := New(SMART, db); !errors.Is(err, ErrNeedsCache) {
		t.Fatalf("SMART: %v", err)
	}
	if _, err := New(DFSCLUST, db); !errors.Is(err, ErrNeedsCluster) {
		t.Fatalf("DFSCLUST: %v", err)
	}
	for _, k := range []Kind{DFS, BFS, BFSNODUP} {
		if _, err := New(k, db); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		DFS: "DFS", BFS: "BFS", BFSNODUP: "BFSNODUP",
		DFSCACHE: "DFSCACHE", DFSCLUST: "DFSCLUST", SMART: "SMART",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d → %q", k, k.String())
		}
	}
}

func TestCostSplitAccounting(t *testing.T) {
	db := buildDB(t, smallCfg())
	s := mustNew(t, DFS, db)
	before := db.Disk.Stats().Total()
	res, err := s.Retrieve(db, Query{Lo: 0, Hi: 49, AttrIdx: workload.FieldRet1})
	if err != nil {
		t.Fatal(err)
	}
	total := db.Disk.Stats().Total() - before
	if res.Split.Total() != total {
		t.Fatalf("split %d+%d != measured %d", res.Split.Par, res.Split.Child, total)
	}
	if res.Split.Par == 0 || res.Split.Child == 0 {
		t.Fatalf("degenerate split %+v", res.Split)
	}
}

func TestNoPinLeaks(t *testing.T) {
	db := buildDB(t, smallCfg())
	for _, k := range AllKinds {
		s := mustNew(t, k, db)
		if _, err := s.Retrieve(db, Query{Lo: 5, Hi: 44, AttrIdx: workload.FieldRet3}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if n := db.Pool.PinnedCount(); n != 0 {
			t.Fatalf("%v leaked %d pins", k, n)
		}
	}
}

func TestUpdateSequenceKeepsAgreement(t *testing.T) {
	// Run a mixed sequence through DFSCACHE (applying updates through
	// both layouts so DFSCLUST stays comparable) and check agreement at
	// the end.
	db := buildDB(t, smallCfg())
	sc := mustNew(t, DFSCACHE, db)
	ops := db.GenSequence(30, 0.4, 10)
	for _, op := range ops {
		switch op.Kind {
		case workload.OpRetrieve:
			if _, err := sc.Retrieve(db, Query{Lo: op.Lo, Hi: op.Hi, AttrIdx: op.AttrIdx}); err != nil {
				t.Fatal(err)
			}
		case workload.OpUpdate:
			if err := sc.Update(db, op); err != nil {
				t.Fatal(err)
			}
			if err := db.ApplyUpdateCluster(op); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := Query{Lo: 0, Hi: 299, AttrIdx: workload.FieldRet1}
	ref, err := mustNew(t, DFS, db).Retrieve(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(ref.Values)
	for _, k := range []Kind{BFS, DFSCACHE, DFSCLUST, SMART} {
		got, err := mustNew(t, k, db).Retrieve(db, q)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !equalSlices(sortedCopy(got.Values), want) {
			t.Fatalf("%v disagrees after mixed sequence", k)
		}
	}
	if err := db.Cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
