package strategy

import (
	"fmt"

	"corep/internal/object"
	"corep/internal/tuple"
	"corep/internal/workload"
)

// ValueScan answers queries against the value-based representation
// (§2.2.1): subobject values ride inside the parent tuples, so a
// retrieve is a single range scan with no joins, probes or cache — the
// entire child cost is folded into the (now much wider) parent scan.
func ValueScan(db *workload.ValueDB, q Query) (*Result, error) {
	valIdx := db.Schema.MustIndex("values")
	res := &Result{}
	span := beginValueIO(db)
	err := db.Parent.Tree.Range(q.Lo, q.Hi, func(_ int64, payload []byte) (bool, error) {
		v, err := tuple.DecodeField(db.Schema, payload, valIdx)
		if err != nil {
			return false, err
		}
		rows, err := object.DecodeNested(db.ChildSchema, v.Raw)
		if err != nil {
			return false, err
		}
		for _, row := range rows {
			res.Values = append(res.Values, row[q.AttrIdx].Int)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	// The whole cost is parent access; there is no separate child fetch.
	res.Split.Par = span.end()
	return res, nil
}

// ValueUpdate applies an update op to the value-based layout. A logical
// subobject has one replica per embedding parent, and every replica must
// be rewritten — the representation's update fan-out ("we need to
// replicate its value wherever required").
func ValueUpdate(db *workload.ValueDB, op workload.Op) error {
	valIdx := db.Schema.MustIndex("values")
	for i, oid := range op.Targets {
		if oid.Rel() != db.ChildRelID() {
			return fmt.Errorf("strategy: update target %v is not a value-based subobject", oid)
		}
		for _, p := range db.Homes[oid] {
			rec, err := db.Parent.Tree.Get(p)
			if err != nil {
				return err
			}
			t, err := tuple.Decode(db.Schema, rec)
			if err != nil {
				return err
			}
			rows, err := object.DecodeNested(db.ChildSchema, t[valIdx].Raw)
			if err != nil {
				return err
			}
			for _, row := range rows {
				if object.OID(row[0].Int) == oid {
					row[workload.FieldRet1] = tuple.IntVal(op.NewRet1[i])
				}
			}
			inline, err := object.EncodeNested(db.ChildSchema, rows)
			if err != nil {
				return err
			}
			t[valIdx] = tuple.BytesVal(inline)
			nrec, err := tuple.Encode(nil, db.Schema, t)
			if err != nil {
				return err
			}
			if err := db.Parent.Tree.Update(p, nrec); err != nil {
				return err
			}
		}
	}
	return nil
}

// beginValueIO mirrors beginIO for the value layout.
func beginValueIO(db *workload.ValueDB) valueSpan {
	return valueSpan{db: db, start: db.Disk.Stats().Total()}
}

type valueSpan struct {
	db    *workload.ValueDB
	start int64
}

func (s valueSpan) end() int64 { return s.db.Disk.Stats().Total() - s.start }
