package strategy

import (
	"testing"

	"corep/internal/object"
	"corep/internal/workload"
)

func buildValue(t *testing.T, cfg workload.Config) *workload.ValueDB {
	t.Helper()
	db, err := workload.BuildValueBased(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestValueScanMatchesOIDRepresentation(t *testing.T) {
	// Built from the same seed, the value-based and OID databases hold
	// the same logical content; only the sequence of rng draws differs
	// per layout, so compare structure: counts and per-parent values
	// being consistent across repeated scans.
	db := buildValue(t, workload.Config{NumParents: 300, SizeUnit: 5, UseFactor: 3, Seed: 21})
	q := Query{Lo: 10, Hi: 59, AttrIdx: workload.FieldRet2}
	res, err := ValueScan(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 50*5 {
		t.Fatalf("values = %d, want 250", len(res.Values))
	}
	// Shared units embed identical replicas: two parents with the same
	// unit return the same multiset.
	pa, pb := int64(-1), int64(-1)
	for u, users := range db.Units {
		_ = u
		_ = users
		break
	}
	// Find two parents sharing a unit.
	byUnit := map[int]int64{}
	for p, u := range db.ParentUnit {
		if other, ok := byUnit[u]; ok {
			pa, pb = other, int64(p)
			break
		}
		byUnit[u] = int64(p)
	}
	if pa < 0 {
		t.Fatal("no shared unit found")
	}
	ra, err := ValueScan(db, Query{Lo: pa, Hi: pa, AttrIdx: workload.FieldRet1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ValueScan(db, Query{Lo: pb, Hi: pb, AttrIdx: workload.FieldRet1})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlices(sortedCopy(ra.Values), sortedCopy(rb.Values)) {
		t.Fatal("parents sharing a unit returned different replicas")
	}
}

func TestValueUpdateAllReplicas(t *testing.T) {
	db := buildValue(t, workload.Config{NumParents: 200, SizeUnit: 4, UseFactor: 4, Seed: 7})
	// Pick a subobject with several homes.
	var target object.OID
	for oid, homes := range db.Homes {
		if len(homes) >= 2 {
			target = oid
			break
		}
	}
	if target == 0 {
		t.Fatal("no shared subobject")
	}
	op := workload.Op{Kind: workload.OpUpdate, Targets: []object.OID{target}, NewRet1: []int64{987654}}
	if err := ValueUpdate(db, op); err != nil {
		t.Fatal(err)
	}
	// Every home must now return the new value exactly once per replica.
	for _, p := range db.Homes[target] {
		res, err := ValueScan(db, Query{Lo: p, Hi: p, AttrIdx: workload.FieldRet1})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, v := range res.Values {
			if v == 987654 {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent %d replica not updated", p)
		}
	}
}

func TestValueUpdateFanOutCost(t *testing.T) {
	// The representation's defining cost: updating a subobject shared by
	// k parents costs ~k random parent updates.
	shared := buildValue(t, workload.Config{NumParents: 400, SizeUnit: 5, UseFactor: 8, Seed: 3})
	unshared := buildValue(t, workload.Config{NumParents: 400, SizeUnit: 5, UseFactor: 1, Seed: 3})
	cost := func(db *workload.ValueDB) int64 {
		if err := db.ResetCold(); err != nil {
			t.Fatal(err)
		}
		ops := db.GenSequence(0, 0, 1)
		_ = ops
		var total int64
		for i := 0; i < 20; i++ {
			op := workload.Op{Kind: workload.OpUpdate,
				Targets: []object.OID{object.NewOID(db.ChildRelID(), int64(i))},
				NewRet1: []int64{int64(i)}}
			before := db.Disk.Stats().Total()
			if err := ValueUpdate(db, op); err != nil {
				t.Fatal(err)
			}
			total += db.Disk.Stats().Total() - before
		}
		return total
	}
	cs, cu := cost(shared), cost(unshared)
	if cs <= cu {
		t.Fatalf("shared update cost %d not above unshared %d", cs, cu)
	}
}

func TestValueUpdateRejectsForeignOID(t *testing.T) {
	db := buildValue(t, workload.Config{NumParents: 100, SizeUnit: 2, UseFactor: 2, Seed: 5})
	op := workload.Op{Kind: workload.OpUpdate,
		Targets: []object.OID{object.NewOID(3, 1)}, NewRet1: []int64{1}}
	if err := ValueUpdate(db, op); err == nil {
		t.Fatal("foreign OID accepted")
	}
}

func TestValueScanCostIndependentOfSharing(t *testing.T) {
	// Retrieval cost is a pure scan: it must not grow with ShareFactor
	// (unlike every OID-column strategy).
	costAt := func(uf int) float64 {
		db := buildValue(t, workload.Config{NumParents: 400, SizeUnit: 5, UseFactor: uf, Seed: 11})
		if err := db.ResetCold(); err != nil {
			t.Fatal(err)
		}
		var total int64
		const n = 20
		for i := int64(0); i < n; i++ {
			before := db.Disk.Stats().Total()
			if _, err := ValueScan(db, Query{Lo: i * 10, Hi: i*10 + 9, AttrIdx: workload.FieldRet1}); err != nil {
				t.Fatal(err)
			}
			total += db.Disk.Stats().Total() - before
		}
		return float64(total) / n
	}
	c1, c8 := costAt(1), costAt(8)
	if c8 > c1*1.5 {
		t.Fatalf("value scan cost grew with sharing: %f vs %f", c1, c8)
	}
}
