// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"testing"

	"corep/internal/buffer"
)

// AssertNoLeaks fails the test when the pool still holds pinned frames
// or the prefetcher still holds staged (pinned) pages. Every operator
// and every strategy must return the pool to zero pins when it
// finishes — a leaked pin wedges eviction for everyone sharing the
// shard. Call it (usually via defer) after the workload under test has
// fully completed, and after draining the prefetcher if one is
// attached.
func AssertNoLeaks(t testing.TB, pool *buffer.Pool) {
	t.Helper()
	if pool == nil {
		return
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Errorf("buffer pool leaks %d pinned page(s)", n)
	}
	pf := pool.Prefetcher()
	if n := pf.StagedCount(); n != 0 {
		t.Errorf("prefetcher leaks %d staged page(s)", n)
	}
	if n := pf.InflightCount(); n != 0 {
		t.Errorf("prefetcher still has %d request(s) in flight", n)
	}
}
