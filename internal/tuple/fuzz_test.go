package tuple

import (
	"bytes"
	"testing"
)

// fuzzSchemas are the record shapes the decoder is fuzzed against; the
// first input byte selects one so a single corpus exercises fixed-only,
// variable-only, and mixed layouts.
var fuzzSchemas = []*Schema{
	NewSchema(
		Field{Name: "oid", Kind: KInt},
		Field{Name: "ret1", Kind: KInt},
		Field{Name: "ret2", Kind: KInt},
	),
	NewSchema(
		Field{Name: "oid", Kind: KInt},
		Field{Name: "value", Kind: KString, Width: 16},
		Field{Name: "children", Kind: KBytes},
	),
	NewSchema(
		Field{Name: "dummy", Kind: KString, Width: 8},
		Field{Name: "kids", Kind: KBytes},
	),
}

// mustEncode builds a seed record for f.Add.
func mustEncode(s *Schema, t Tuple) []byte {
	rec, err := Encode(nil, s, t)
	if err != nil {
		panic(err)
	}
	return rec
}

// FuzzTupleDecode throws arbitrary bytes at the record decoder. Garbage
// must be rejected with ErrDecode-wrapped errors (never a panic or an
// out-of-range slice), and any record that does decode must satisfy the
// codec's round-trip contract: re-encoding reproduces the input bytes
// exactly (the seed figures depend on records being bit-stable), the
// projection path DecodeField agrees with the full Decode on every
// field, Key agrees on the primary key, and EncodedSize matches the
// wire length.
func FuzzTupleDecode(f *testing.F) {
	f.Add([]byte{0}, []byte{})
	f.Add([]byte{0}, mustEncode(fuzzSchemas[0], Tuple{IntVal(1), IntVal(-7), IntVal(1 << 40)}))
	f.Add([]byte{1}, mustEncode(fuzzSchemas[1], Tuple{IntVal(42), StrVal("cyclist"), BytesVal([]byte{1, 2, 3})}))
	f.Add([]byte{1}, mustEncode(fuzzSchemas[1], Tuple{IntVal(0), StrVal(""), BytesVal(nil)}))
	f.Add([]byte{2}, mustEncode(fuzzSchemas[2], Tuple{StrVal("a\x00b"), BytesVal(bytes.Repeat([]byte{0xff}, 300))}))
	f.Add([]byte{2}, []byte{2, 0, 'h', 'i', 0xff, 0xff})

	f.Fuzz(func(t *testing.T, sel, rec []byte) {
		var which int
		if len(sel) > 0 {
			which = int(sel[0]) % len(fuzzSchemas)
		}
		s := fuzzSchemas[which]

		tup, err := Decode(s, rec)
		if err != nil {
			return // malformed input rejected cleanly — that's the contract
		}
		reenc, err := Encode(nil, s, tup)
		if err != nil {
			t.Fatalf("decoded tuple failed to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, rec) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", rec, reenc)
		}
		if got := EncodedSize(s, tup); got != len(rec) {
			t.Fatalf("EncodedSize = %d, wire length = %d", got, len(rec))
		}
		for i := range s.Fields {
			v, err := DecodeField(s, rec, i)
			if err != nil {
				t.Fatalf("DecodeField(%d) failed on a decodable record: %v", i, err)
			}
			if !v.Equal(tup[i]) {
				t.Fatalf("DecodeField(%d) = %v, Decode gave %v", i, v, tup[i])
			}
		}
		if s.Fields[0].Kind == KInt {
			k, err := Key(s, rec)
			if err != nil {
				t.Fatalf("Key failed on a decodable record: %v", err)
			}
			if k != tup[0].Int {
				t.Fatalf("Key = %d, field 0 = %d", k, tup[0].Int)
			}
		}
	})
}
