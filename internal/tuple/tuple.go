// Package tuple defines relation schemas and the record codec.
//
// The paper's relations mix integer fields (ret1..ret3, OID, cluster#,
// hashkey) with character fields whose blanks are "compressed" so that
// records are variable length (§4: dummy, children, value). We reproduce
// that with a codec where integers are fixed 8-byte fields and character
// / byte fields are length-prefixed, giving variable-length records with
// a fixed declared width, exactly the effect of INGRES blank compression.
package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Kind enumerates field types.
type Kind uint8

// Field kinds.
const (
	KInt    Kind = iota // 64-bit signed integer
	KString             // character field, blank-compressed (variable length)
	KBytes              // raw byte field, variable length (e.g. encoded OID lists)
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KString:
		return "char"
	case KBytes:
		return "bytes"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Field describes one attribute of a relation.
type Field struct {
	Name string
	Kind Kind
	// Width is the declared width of a character field. Encoding stores
	// only the used prefix (blank compression); Width documents intent
	// and bounds generated values.
	Width int
}

// Schema is an ordered list of fields. The first field is by convention
// the primary key in this reproduction (OID or hashkey).
type Schema struct {
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema from fields; field names must be unique.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if _, dup := s.byName[f.Name]; dup {
			panic(fmt.Sprintf("tuple: duplicate field %q", f.Name))
		}
		s.byName[f.Name] = i
	}
	return s
}

// Index returns the position of the named field, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics on unknown names (programming errors).
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("tuple: no field %q in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the field names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.Fields) }

// Value is one field value. Exactly one arm is meaningful, per the
// field's Kind; Kind is carried to keep equality and printing honest.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
	Raw  []byte
}

// IntVal wraps an integer value.
func IntVal(v int64) Value { return Value{Kind: KInt, Int: v} }

// StrVal wraps a character value.
func StrVal(v string) Value { return Value{Kind: KString, Str: v} }

// BytesVal wraps a raw byte value.
func BytesVal(v []byte) Value { return Value{Kind: KBytes, Raw: v} }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KInt:
		return v.Int == o.Int
	case KString:
		return v.Str == o.Str
	default:
		return string(v.Raw) == string(o.Raw)
	}
}

// Compare orders two values of the same kind: -1, 0, +1.
func (v Value) Compare(o Value) int {
	switch v.Kind {
	case KInt:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case KString:
		return strings.Compare(v.Str, o.Str)
	default:
		return strings.Compare(string(v.Raw), string(o.Raw))
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.Int)
	case KString:
		return v.Str
	default:
		return fmt.Sprintf("0x%x", v.Raw)
	}
}

// Tuple is an ordered list of values conforming to a schema.
type Tuple []Value

// ErrDecode reports a malformed record.
var ErrDecode = errors.New("tuple: malformed record")

// Encode serializes t per schema s, appending to dst.
func Encode(dst []byte, s *Schema, t Tuple) ([]byte, error) {
	if len(t) != len(s.Fields) {
		return nil, fmt.Errorf("tuple: %d values for %d fields", len(t), len(s.Fields))
	}
	for i, f := range s.Fields {
		v := t[i]
		if v.Kind != f.Kind {
			return nil, fmt.Errorf("tuple: field %q wants %v, got %v", f.Name, f.Kind, v.Kind)
		}
		switch f.Kind {
		case KInt:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.Int))
			dst = append(dst, b[:]...)
		case KString:
			dst = appendVar(dst, []byte(v.Str))
		case KBytes:
			dst = appendVar(dst, v.Raw)
		}
	}
	return dst, nil
}

func appendVar(dst, b []byte) []byte {
	if len(b) > 0xffff {
		panic("tuple: variable field exceeds 64 KiB")
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(b)))
	dst = append(dst, l[:]...)
	return append(dst, b...)
}

// Decode parses rec per schema s. String and byte values copy out of rec
// so the record buffer may be unpinned afterwards.
func Decode(s *Schema, rec []byte) (Tuple, error) {
	t := make(Tuple, len(s.Fields))
	off := 0
	for i, f := range s.Fields {
		switch f.Kind {
		case KInt:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("%w: field %q", ErrDecode, f.Name)
			}
			t[i] = IntVal(int64(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		default:
			if off+2 > len(rec) {
				return nil, fmt.Errorf("%w: field %q length", ErrDecode, f.Name)
			}
			n := int(binary.LittleEndian.Uint16(rec[off:]))
			off += 2
			if off+n > len(rec) {
				return nil, fmt.Errorf("%w: field %q body", ErrDecode, f.Name)
			}
			if f.Kind == KString {
				t[i] = StrVal(string(rec[off : off+n]))
			} else {
				t[i] = BytesVal(append([]byte(nil), rec[off:off+n]...))
			}
			off += n
		}
	}
	if off != len(rec) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(rec)-off)
	}
	return t, nil
}

// DecodeField parses only field idx out of rec, skipping earlier fields
// without materializing them. Projection-heavy strategies use this to
// avoid per-tuple garbage.
func DecodeField(s *Schema, rec []byte, idx int) (Value, error) {
	off := 0
	for i, f := range s.Fields {
		switch f.Kind {
		case KInt:
			if off+8 > len(rec) {
				return Value{}, fmt.Errorf("%w: field %q", ErrDecode, f.Name)
			}
			if i == idx {
				return IntVal(int64(binary.LittleEndian.Uint64(rec[off:]))), nil
			}
			off += 8
		default:
			if off+2 > len(rec) {
				return Value{}, fmt.Errorf("%w: field %q length", ErrDecode, f.Name)
			}
			n := int(binary.LittleEndian.Uint16(rec[off:]))
			off += 2
			if off+n > len(rec) {
				return Value{}, fmt.Errorf("%w: field %q body", ErrDecode, f.Name)
			}
			if i == idx {
				if f.Kind == KString {
					return StrVal(string(rec[off : off+n])), nil
				}
				return BytesVal(append([]byte(nil), rec[off:off+n]...)), nil
			}
			off += n
		}
	}
	return Value{}, fmt.Errorf("%w: field %d out of range", ErrDecode, idx)
}

// Key returns the tuple's primary-key integer (field 0 by convention).
func Key(s *Schema, rec []byte) (int64, error) {
	if len(s.Fields) == 0 || s.Fields[0].Kind != KInt {
		return 0, errors.New("tuple: schema has no integer key field")
	}
	if len(rec) < 8 {
		return 0, ErrDecode
	}
	return int64(binary.LittleEndian.Uint64(rec)), nil
}

// EncodedSize returns the record size Encode would produce.
func EncodedSize(s *Schema, t Tuple) int {
	n := 0
	for i, f := range s.Fields {
		switch f.Kind {
		case KInt:
			n += 8
		case KString:
			n += 2 + len(t[i].Str)
		case KBytes:
			n += 2 + len(t[i].Raw)
		}
	}
	return n
}

func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
