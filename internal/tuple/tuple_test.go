package tuple

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func childSchema() *Schema {
	return NewSchema(
		Field{Name: "OID", Kind: KInt},
		Field{Name: "ret1", Kind: KInt},
		Field{Name: "ret2", Kind: KInt},
		Field{Name: "ret3", Kind: KInt},
		Field{Name: "dummy", Kind: KString, Width: 60},
	)
}

func TestSchemaIndex(t *testing.T) {
	s := childSchema()
	if s.Index("ret2") != 2 {
		t.Fatalf("ret2 at %d", s.Index("ret2"))
	}
	if s.Index("nope") != -1 {
		t.Fatal("unknown field found")
	}
	if got := s.MustIndex("dummy"); got != 4 {
		t.Fatalf("dummy at %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on unknown did not panic")
		}
	}()
	s.MustIndex("nope")
}

func TestDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate field")
		}
	}()
	NewSchema(Field{Name: "a", Kind: KInt}, Field{Name: "a", Kind: KInt})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := childSchema()
	tp := Tuple{IntVal(42), IntVal(-7), IntVal(0), IntVal(1 << 40), StrVal("hello")}
	rec, err := Encode(nil, s, tp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tp {
		if !got[i].Equal(tp[i]) {
			t.Fatalf("field %d = %v, want %v", i, got[i], tp[i])
		}
	}
}

func TestEncodeBytesField(t *testing.T) {
	s := NewSchema(Field{Name: "OID", Kind: KInt}, Field{Name: "children", Kind: KBytes})
	raw := []byte{1, 2, 3, 0, 255}
	rec, err := Encode(nil, s, Tuple{IntVal(9), BytesVal(raw)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[1].Raw) != string(raw) {
		t.Fatalf("raw = %v", got[1].Raw)
	}
	// Decode must copy: mutating rec must not change the decoded value.
	rec[len(rec)-1] = 0
	if got[1].Raw[4] != 255 {
		t.Fatal("decoded bytes alias the record")
	}
}

func TestEncodeArityMismatch(t *testing.T) {
	s := childSchema()
	if _, err := Encode(nil, s, Tuple{IntVal(1)}); err == nil {
		t.Fatal("no error on arity mismatch")
	}
}

func TestEncodeKindMismatch(t *testing.T) {
	s := NewSchema(Field{Name: "a", Kind: KInt})
	if _, err := Encode(nil, s, Tuple{StrVal("x")}); err == nil {
		t.Fatal("no error on kind mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := childSchema()
	tp := Tuple{IntVal(1), IntVal(2), IntVal(3), IntVal(4), StrVal("abc")}
	rec, _ := Encode(nil, s, tp)
	for cut := 1; cut < len(rec); cut++ {
		if _, err := Decode(s, rec[:cut]); !errors.Is(err, ErrDecode) {
			t.Fatalf("cut=%d: err = %v, want ErrDecode", cut, err)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	s := NewSchema(Field{Name: "a", Kind: KInt})
	rec, _ := Encode(nil, s, Tuple{IntVal(1)})
	rec = append(rec, 0xFF)
	if _, err := Decode(s, rec); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeField(t *testing.T) {
	s := childSchema()
	tp := Tuple{IntVal(10), IntVal(20), IntVal(30), IntVal(40), StrVal("pad")}
	rec, _ := Encode(nil, s, tp)
	for i := range tp {
		got, err := DecodeField(s, rec, i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tp[i]) {
			t.Fatalf("field %d = %v, want %v", i, got, tp[i])
		}
	}
	if _, err := DecodeField(s, rec, 9); err == nil {
		t.Fatal("no error for out-of-range field")
	}
}

func TestKey(t *testing.T) {
	s := childSchema()
	rec, _ := Encode(nil, s, Tuple{IntVal(777), IntVal(0), IntVal(0), IntVal(0), StrVal("")})
	k, err := Key(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if k != 777 {
		t.Fatalf("key = %d", k)
	}
	bad := NewSchema(Field{Name: "s", Kind: KString})
	if _, err := Key(bad, rec); err == nil {
		t.Fatal("Key on string-keyed schema should fail")
	}
}

func TestEncodedSize(t *testing.T) {
	s := childSchema()
	tp := Tuple{IntVal(1), IntVal(2), IntVal(3), IntVal(4), StrVal("abcdef")}
	rec, _ := Encode(nil, s, tp)
	if got := EncodedSize(s, tp); got != len(rec) {
		t.Fatalf("EncodedSize = %d, len = %d", got, len(rec))
	}
}

func TestBlankCompressionEffect(t *testing.T) {
	// The declared width does not inflate the record: short strings
	// produce short records (the INGRES blank-compression analogue).
	s := NewSchema(Field{Name: "k", Kind: KInt}, Field{Name: "dummy", Kind: KString, Width: 100})
	small, _ := Encode(nil, s, Tuple{IntVal(1), StrVal("ab")})
	big, _ := Encode(nil, s, Tuple{IntVal(1), StrVal(strings.Repeat("x", 100))})
	if len(small) >= len(big) {
		t.Fatalf("small=%d big=%d", len(small), len(big))
	}
	if len(small) != 8+2+2 {
		t.Fatalf("small = %d bytes", len(small))
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{StrVal("a"), StrVal("b"), -1},
		{StrVal("b"), StrVal("b"), 0},
		{BytesVal([]byte{2}), BytesVal([]byte{1}), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Fatalf("%v cmp %v = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqualKinds(t *testing.T) {
	if IntVal(1).Equal(StrVal("1")) {
		t.Fatal("cross-kind equality")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := NewSchema(
		Field{Name: "k", Kind: KInt},
		Field{Name: "s", Kind: KString, Width: 50},
		Field{Name: "b", Kind: KBytes},
		Field{Name: "v", Kind: KInt},
	)
	f := func(k, v int64, str string, raw []byte) bool {
		if len(str) > 1000 {
			str = str[:1000]
		}
		if len(raw) > 1000 {
			raw = raw[:1000]
		}
		tp := Tuple{IntVal(k), StrVal(str), BytesVal(raw), IntVal(v)}
		rec, err := Encode(nil, s, tp)
		if err != nil {
			return false
		}
		got, err := Decode(s, rec)
		if err != nil {
			return false
		}
		for i := range tp {
			if !got[i].Equal(tp[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFieldMatchesDecodeProperty(t *testing.T) {
	s := childSchema()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tp := Tuple{IntVal(rng.Int63()), IntVal(rng.Int63()), IntVal(rng.Int63()),
			IntVal(rng.Int63()), StrVal(strings.Repeat("z", rng.Intn(60)))}
		rec, err := Encode(nil, s, tp)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Decode(s, rec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tp {
			one, err := DecodeField(s, rec, i)
			if err != nil {
				t.Fatal(err)
			}
			if !one.Equal(full[i]) {
				t.Fatalf("trial %d field %d: %v != %v", trial, i, one, full[i])
			}
		}
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{IntVal(1), StrVal("x"), BytesVal([]byte{0xAB})}
	if got := tp.String(); got != "(1, x, 0xab)" {
		t.Fatalf("string = %q", got)
	}
}
