// Package txn is the epoch-stamped version layer that makes concurrent
// serving write-scalable: updates install new ret1 versions in a
// sharded in-memory store under short per-object latches and publish
// them with a single atomic epoch bump, while retrieves pin a snapshot
// epoch and overlay the newest version at or under it — no shared
// read/write latch anywhere on the read path.
//
// The protocol (DESIGN.md §11):
//
//   - published is the newest visible epoch. Begin() loads it once;
//     everything a snapshot reads is the state as of that epoch.
//   - An update latches its targets' shards (sorted, deduplicated —
//     no deadlocks), stages the new values, then commits: under a
//     short store-wide commitMu it takes e = published+1, inserts the
//     versions stamped e, runs the caller's pre-publish hook (cache
//     watermarks), and stores published = e. Versions inserted before
//     the publish are invisible — every live snapshot has epoch < e —
//     so readers never see a half-installed batch.
//   - The per-object latches serialize write-write conflicts only;
//     they are striped by the same hash as the version shards and
//     contended acquisitions are counted per shard.
//   - Drain applies the newest version of every object (deterministic
//     OID order) and empties the store — the phase-reconciliation step
//     that folds the overlay back into the base layout once the
//     serving burst has quiesced.
//
// The base relations are never written while versions are live, so
// single-threaded runs (every figure cell) bypass this package
// entirely and stay bit-identical.
package txn

import (
	"sort"
	"sync"
	"sync/atomic"

	"corep/internal/object"
)

// DefaultShards is the version-map/latch stripe count.
const DefaultShards = 64

// Version is one published value of an object: the new ret1 (the only
// field the paper's update queries modify) stamped with its epoch.
type Version struct {
	Epoch uint64
	Val   int64
}

// shard is one stripe of the version map plus its write latch. The
// RWMutex guards the map only (reads hold it for one chain walk); the
// latch serializes updates whose targets hash here and is held across
// the whole stage/commit of an update.
type shard struct {
	mu sync.RWMutex
	m  map[object.OID][]Version // chains, newest first

	latch      sync.Mutex
	latchWaits atomic.Int64 // contended latch acquisitions
	hits       atomic.Int64 // snapshot reads answered from a chain
}

// Store is the version store shared by every client of one database.
type Store struct {
	published atomic.Uint64
	commitMu  sync.Mutex
	shards    []shard

	active    atomic.Int64 // live (unreleased) snapshots
	snapshots atomic.Int64 // Begin calls — "snapshot reads" of the op mix
	installed atomic.Int64 // versions installed
	commits   atomic.Int64
	aborts    atomic.Int64
	drained   atomic.Int64
}

// New creates a store with nshards stripes (<= 0 means DefaultShards).
func New(nshards int) *Store {
	if nshards <= 0 {
		nshards = DefaultShards
	}
	s := &Store{shards: make([]shard, nshards)}
	for i := range s.shards {
		s.shards[i].m = make(map[object.OID][]Version)
	}
	return s
}

// shardOf hashes an OID onto a stripe (Fibonacci hashing: child keys
// are dense small integers, so a plain modulus would leave most
// stripes cold).
func (s *Store) shardOf(oid object.OID) int {
	h := uint64(oid) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(s.shards)))
}

// Published returns the newest visible epoch.
func (s *Store) Published() uint64 { return s.published.Load() }

// Snapshot is one pinned read epoch. The zero of *Snapshot (nil) is a
// valid "no overlay" snapshot: Read always misses and Release is a
// no-op, so single-threaded callers pass nil and pay nothing.
type Snapshot struct {
	store    *Store
	epoch    uint64
	released bool
}

// Begin pins a snapshot at the current published epoch.
func (s *Store) Begin() *Snapshot {
	s.snapshots.Add(1)
	s.active.Add(1)
	return &Snapshot{store: s, epoch: s.published.Load()}
}

// Epoch returns the pinned epoch (0 for a nil snapshot).
func (sn *Snapshot) Epoch() uint64 {
	if sn == nil {
		return 0
	}
	return sn.epoch
}

// Read returns the newest version of oid at or under the snapshot
// epoch. ok=false means no version qualifies and the base value
// stands. Nil-safe.
func (sn *Snapshot) Read(oid object.OID) (int64, bool) {
	if sn == nil {
		return 0, false
	}
	sh := &sn.store.shards[sn.store.shardOf(oid)]
	sh.mu.RLock()
	chain := sh.m[oid]
	for _, v := range chain {
		if v.Epoch <= sn.epoch {
			sh.mu.RUnlock()
			sh.hits.Add(1)
			return v.Val, true
		}
	}
	sh.mu.RUnlock()
	return 0, false
}

// Release unpins the snapshot. Idempotent; nil-safe.
func (sn *Snapshot) Release() {
	if sn == nil || sn.released {
		return
	}
	sn.released = true
	sn.store.active.Add(-1)
}

// Update is one in-flight update: its target stripes stay latched from
// BeginUpdate until Commit or Abort, so concurrent updates to the same
// objects serialize while everything else proceeds.
type Update struct {
	store   *Store
	stripes []int
	pending []staged
	done    bool
}

type staged struct {
	oid object.OID
	val int64
}

// BeginUpdate latches the write stripes of targets (sorted and
// deduplicated, so two updates with overlapping target sets can never
// deadlock) and returns the staging handle.
func (s *Store) BeginUpdate(targets []object.OID) *Update {
	seen := make(map[int]bool, len(targets))
	stripes := make([]int, 0, len(targets))
	for _, oid := range targets {
		if i := s.shardOf(oid); !seen[i] {
			seen[i] = true
			stripes = append(stripes, i)
		}
	}
	sort.Ints(stripes)
	for _, i := range stripes {
		sh := &s.shards[i]
		if !sh.latch.TryLock() {
			sh.latchWaits.Add(1)
			sh.latch.Lock()
		}
	}
	return &Update{store: s, stripes: stripes, pending: make([]staged, 0, len(targets))}
}

// Stage records one new value. Staging the same OID twice keeps the
// later value on top of the chain — last writer wins, matching the
// in-place apply order of the base layouts.
func (u *Update) Stage(oid object.OID, val int64) {
	u.pending = append(u.pending, staged{oid: oid, val: val})
}

// Commit publishes the staged versions as one new epoch and releases
// the latches. mark, when non-nil, runs inside the publish critical
// section with the new epoch, before it becomes visible — the hook the
// cache uses to advance invalidation watermarks so no snapshot at or
// past the epoch can hit a stale entry. Returns the published epoch.
func (u *Update) Commit(mark func(epoch uint64)) uint64 {
	s := u.store
	s.commitMu.Lock()
	e := s.published.Load() + 1
	for _, p := range u.pending {
		sh := &s.shards[s.shardOf(p.oid)]
		sh.mu.Lock()
		sh.m[p.oid] = append([]Version{{Epoch: e, Val: p.val}}, sh.m[p.oid]...)
		sh.mu.Unlock()
	}
	if mark != nil {
		mark(e)
	}
	s.published.Store(e)
	s.commitMu.Unlock()
	u.unlatch()
	s.commits.Add(1)
	s.installed.Add(int64(len(u.pending)))
	return e
}

// Abort discards the staged versions and releases the latches.
func (u *Update) Abort() {
	if u.done {
		return
	}
	u.unlatch()
	u.store.aborts.Add(1)
}

func (u *Update) unlatch() {
	if u.done {
		return
	}
	u.done = true
	for i := len(u.stripes) - 1; i >= 0; i-- {
		u.store.shards[u.stripes[i]].latch.Unlock()
	}
}

// Pending returns how many objects hold undrained versions.
func (s *Store) Pending() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Drain applies the newest version of every object through apply, in
// ascending OID order (deterministic for a given version set), and
// empties the store. The caller must have quiesced concurrent use —
// drain is the post-burst reconciliation step, not an online path. An
// apply error aborts the drain; already-applied objects stay applied
// and the rest are lost, so callers treat it as fatal for the run.
func (s *Store) Drain(apply func(oid object.OID, val int64) error) (int, error) {
	var items []staged
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for oid, chain := range sh.m {
			items = append(items, staged{oid: oid, val: chain[0].Val})
		}
		sh.m = make(map[object.OID][]Version)
		sh.mu.Unlock()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].oid < items[j].oid })
	for n, it := range items {
		if err := apply(it.oid, it.val); err != nil {
			s.drained.Add(int64(n))
			return n, err
		}
	}
	s.drained.Add(int64(len(items)))
	return len(items), nil
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Published uint64 `json:"published_epoch"`
	Installed int64  `json:"versions_installed"`
	Commits   int64  `json:"commits"`
	Aborts    int64  `json:"aborts"`
	Snapshots int64  `json:"snapshot_reads"`
	Hits      int64  `json:"overlay_hits"`
	Drained   int64  `json:"drained"`
	Active    int64  `json:"active_snapshots"`
	Pending   int    `json:"pending_objects"`

	// LatchWaits[i] counts contended write-latch acquisitions on shard
	// i; Waited sums them.
	LatchWaits []int64 `json:"latch_waits_per_shard,omitempty"`
	Waited     int64   `json:"latch_waits"`
}

// Stats snapshots the counters (safe concurrently with serving).
func (s *Store) Stats() Stats {
	st := Stats{
		Published: s.published.Load(),
		Installed: s.installed.Load(),
		Commits:   s.commits.Load(),
		Aborts:    s.aborts.Load(),
		Snapshots: s.snapshots.Load(),
		Drained:   s.drained.Load(),
		Active:    s.active.Load(),
		Pending:   s.Pending(),
	}
	for i := range s.shards {
		w := s.shards[i].latchWaits.Load()
		st.Hits += s.shards[i].hits.Load()
		if w > 0 && st.LatchWaits == nil {
			st.LatchWaits = make([]int64, len(s.shards))
		}
		if st.LatchWaits != nil {
			st.LatchWaits[i] = w
		}
		st.Waited += w
	}
	return st
}
