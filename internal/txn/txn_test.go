package txn

import (
	"sync"
	"testing"
	"time"

	"corep/internal/object"
)

func TestSnapshotVisibility(t *testing.T) {
	s := New(4)
	a := object.NewOID(1, 10)
	b := object.NewOID(1, 11)

	s0 := s.Begin()
	if _, ok := s0.Read(a); ok {
		t.Fatal("empty store: snapshot read should miss")
	}

	u := s.BeginUpdate([]object.OID{a, b})
	u.Stage(a, 100)
	u.Stage(b, 200)
	e := u.Commit(nil)
	if e != 1 {
		t.Fatalf("first epoch = %d, want 1", e)
	}

	// The pre-commit snapshot must never see the new versions.
	if _, ok := s0.Read(a); ok {
		t.Fatal("old snapshot sees post-snapshot version")
	}
	s1 := s.Begin()
	if v, ok := s1.Read(a); !ok || v != 100 {
		t.Fatalf("new snapshot read a = %d,%v, want 100,true", v, ok)
	}
	if v, ok := s1.Read(b); !ok || v != 200 {
		t.Fatalf("new snapshot read b = %d,%v, want 200,true", v, ok)
	}

	// Second update to a: s1 keeps seeing 100, s2 sees 300.
	u2 := s.BeginUpdate([]object.OID{a})
	u2.Stage(a, 300)
	if e := u2.Commit(nil); e != 2 {
		t.Fatalf("second epoch = %d, want 2", e)
	}
	if v, _ := s1.Read(a); v != 100 {
		t.Fatalf("snapshot at epoch 1 read a = %d, want 100", v)
	}
	s2 := s.Begin()
	if v, _ := s2.Read(a); v != 300 {
		t.Fatalf("snapshot at epoch 2 read a = %d, want 300", v)
	}
	s0.Release()
	s1.Release()
	s2.Release()
	if got := s.Stats().Active; got != 0 {
		t.Fatalf("active snapshots after release = %d, want 0", got)
	}
}

func TestNilSnapshotIsNoOverlay(t *testing.T) {
	var sn *Snapshot
	if _, ok := sn.Read(object.NewOID(1, 1)); ok {
		t.Fatal("nil snapshot read must miss")
	}
	if sn.Epoch() != 0 {
		t.Fatal("nil snapshot epoch must be 0")
	}
	sn.Release() // must not panic
}

func TestDuplicateStageLastWriterWins(t *testing.T) {
	s := New(4)
	a := object.NewOID(2, 5)
	u := s.BeginUpdate([]object.OID{a, a})
	u.Stage(a, 1)
	u.Stage(a, 2)
	u.Commit(nil)
	sn := s.Begin()
	defer sn.Release()
	if v, _ := sn.Read(a); v != 2 {
		t.Fatalf("duplicate stage read = %d, want last-staged 2", v)
	}
	var drainedVal int64
	if _, err := s.Drain(func(_ object.OID, v int64) error {
		drainedVal = v
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if drainedVal != 2 {
		t.Fatalf("drain applied %d, want last-staged 2", drainedVal)
	}
}

func TestAbortReleasesLatches(t *testing.T) {
	s := New(2)
	a := object.NewOID(1, 1)
	u := s.BeginUpdate([]object.OID{a})
	u.Stage(a, 42)
	u.Abort()
	// Latch must be free again: a second BeginUpdate on the same target
	// completes without blocking.
	done := make(chan struct{})
	go func() {
		u2 := s.BeginUpdate([]object.OID{a})
		u2.Commit(nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("latch not released by Abort")
	}
	st := s.Stats()
	if st.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", st.Aborts)
	}
	if st.Installed != 0 {
		t.Fatalf("aborted stage installed %d versions", st.Installed)
	}
	sn := s.Begin()
	defer sn.Release()
	if _, ok := sn.Read(a); ok {
		t.Fatal("aborted version visible")
	}
}

func TestLatchWaitCounting(t *testing.T) {
	s := New(1) // single stripe: any two updates contend
	a := object.NewOID(1, 1)
	u := s.BeginUpdate([]object.OID{a})
	done := make(chan struct{})
	go func() {
		u2 := s.BeginUpdate([]object.OID{a})
		u2.Commit(nil)
		close(done)
	}()
	// Wait until the second updater has registered its contended
	// acquisition, then release.
	deadline := time.After(5 * time.Second)
	for s.Stats().Waited == 0 {
		select {
		case <-deadline:
			t.Fatal("no latch wait recorded")
		case <-time.After(time.Millisecond):
		}
	}
	u.Commit(nil)
	<-done
	st := s.Stats()
	if st.Waited != 1 || len(st.LatchWaits) != 1 || st.LatchWaits[0] != 1 {
		t.Fatalf("latch waits = %+v, want 1 on shard 0", st)
	}
}

// TestConcurrentCommitAtomicity hammers one batch of objects from many
// writers while readers assert every snapshot sees a whole batch: all
// targets carry the same writer's value or a consistent mix of *whole*
// earlier batches — never a partially installed epoch. Run with -race.
func TestConcurrentCommitAtomicity(t *testing.T) {
	s := New(8)
	const nObj = 16
	oids := make([]object.OID, nObj)
	for i := range oids {
		oids[i] = object.NewOID(3, int64(i))
	}
	// Seed epoch 1 so readers always find a version.
	u := s.BeginUpdate(oids)
	for _, o := range oids {
		u.Stage(o, 0)
	}
	u.Commit(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= 4; w++ {
		wg.Add(1)
		go func(val int64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := s.BeginUpdate(oids)
				for _, o := range oids {
					u.Stage(o, val*1000+int64(i))
				}
				u.Commit(nil)
			}
		}(int64(w))
	}
	errs := make(chan string, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Begin()
				first, ok := sn.Read(oids[0])
				if !ok {
					errs <- "seeded object missing"
					sn.Release()
					return
				}
				for _, o := range oids[1:] {
					v, _ := sn.Read(o)
					if v != first {
						errs <- "torn batch: mixed values in one snapshot"
						sn.Release()
						return
					}
				}
				sn.Release()
			}
		}()
	}
	// Writers finish, then stop readers.
	writerDone := make(chan struct{})
	go func() {
		// Only the 4 writer goroutines gate this; readers loop on stop.
		for s.Stats().Commits < 1+4*200 {
			time.Sleep(time.Millisecond)
		}
		close(writerDone)
	}()
	select {
	case <-writerDone:
	case e := <-errs:
		t.Fatal(e)
	case <-time.After(30 * time.Second):
		t.Fatal("writers did not finish")
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	st := s.Stats()
	if st.Active != 0 {
		t.Fatalf("active snapshots = %d, want 0", st.Active)
	}
	if st.Installed != int64(nObj*(1+4*200)) {
		t.Fatalf("installed = %d, want %d", st.Installed, nObj*(1+4*200))
	}
}

func TestDrainNewestSortedAndEmpties(t *testing.T) {
	s := New(4)
	a := object.NewOID(1, 7)
	b := object.NewOID(1, 3)
	c := object.NewOID(2, 1)
	for i, batch := range [][]struct {
		oid object.OID
		val int64
	}{
		{{a, 10}, {b, 20}},
		{{a, 11}, {c, 30}},
	} {
		u := s.BeginUpdate([]object.OID{a, b, c})
		for _, e := range batch {
			u.Stage(e.oid, e.val)
		}
		if got := u.Commit(nil); got != uint64(i+1) {
			t.Fatalf("epoch = %d, want %d", got, i+1)
		}
	}
	var gotOIDs []object.OID
	var gotVals []int64
	n, err := s.Drain(func(oid object.OID, v int64) error {
		gotOIDs = append(gotOIDs, oid)
		gotVals = append(gotVals, v)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("drain = %d,%v, want 3,nil", n, err)
	}
	// Ascending OID order; newest value per object.
	wantOIDs := []object.OID{b, a, c} // (1,3) < (1,7) < (2,1)
	wantVals := []int64{20, 11, 30}
	for i := range wantOIDs {
		if gotOIDs[i] != wantOIDs[i] || gotVals[i] != wantVals[i] {
			t.Fatalf("drain[%d] = (%d,%d), want (%d,%d)",
				i, gotOIDs[i], gotVals[i], wantOIDs[i], wantVals[i])
		}
	}
	if s.Pending() != 0 {
		t.Fatal("store not empty after drain")
	}
	if st := s.Stats(); st.Drained != 3 {
		t.Fatalf("drained counter = %d, want 3", st.Drained)
	}
}
