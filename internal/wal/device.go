package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Device is the flat byte store under a Log: an append-oriented file
// abstraction with an explicit durability barrier. FileDevice is the
// real implementation; MemDevice simulates a device whose unsynced
// writes may partially survive a crash (the OS page cache flushed some
// bytes on its own before the process died), which is what makes torn
// log tails reachable in the crash harness.
type Device interface {
	WriteAt(p []byte, off int64) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the current device length in bytes.
	Size() (int64, error)
	// Sync makes every completed WriteAt durable.
	Sync() error
	// Truncate discards everything at and after size.
	Truncate(size int64) error
	Close() error
}

// FileDevice is a Device over a real file.
type FileDevice struct {
	f *os.File
}

// OpenFileDevice opens (creating if absent) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error)  { return d.f.ReadAt(p, off) }

func (d *FileDevice) Size() (int64, error) {
	fi, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (d *FileDevice) Sync() error { return d.f.Sync() }

func (d *FileDevice) Truncate(size int64) error {
	if err := d.f.Truncate(size); err != nil {
		return err
	}
	return d.f.Sync()
}

func (d *FileDevice) Close() error { return d.f.Close() }

// ErrSyncFailed is the injected fsync failure of MemDevice.FailNextSync.
var ErrSyncFailed = errors.New("wal: injected sync failure")

// MemDevice is an in-memory Device that models the synced/unsynced
// boundary: Sync advances a watermark, and Crash returns the bytes a
// reopened process would find — the synced prefix plus a caller-chosen
// amount of the unsynced tail, which may end mid-record. An optional
// per-Sync delay simulates fsync latency for the group-commit sweep.
type MemDevice struct {
	mu        sync.Mutex
	buf       []byte
	synced    int64
	syncDelay time.Duration
	failNext  bool
	syncs     int64
}

// NewMemDevice returns an empty in-memory device. syncDelay, when
// positive, is slept inside every Sync — the simulated cost the group
// committer amortizes.
func NewMemDevice(syncDelay time.Duration) *MemDevice {
	return &MemDevice{syncDelay: syncDelay}
}

// NewMemDeviceBytes returns a device holding (and fully synced to) the
// given bytes — the post-crash medium handed to recovery.
func NewMemDeviceBytes(b []byte) *MemDevice {
	cp := append([]byte(nil), b...)
	return &MemDevice{buf: cp, synced: int64(len(cp))}
}

func (m *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		m.buf = append(m.buf, make([]byte, need-int64(len(m.buf)))...)
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.buf)) {
		return 0, fmt.Errorf("wal: read past end (off %d, size %d)", off, len(m.buf))
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("wal: short read at %d", off)
	}
	return n, nil
}

func (m *MemDevice) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.buf)), nil
}

func (m *MemDevice) Sync() error {
	m.mu.Lock()
	fail := m.failNext
	m.failNext = false
	delay := m.syncDelay
	if !fail {
		m.synced = int64(len(m.buf))
		m.syncs++
	}
	m.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return ErrSyncFailed
	}
	return nil
}

func (m *MemDevice) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.buf)) {
		m.buf = m.buf[:size]
	}
	if m.synced > size {
		m.synced = size
	}
	return nil
}

func (m *MemDevice) Close() error { return nil }

// FailNextSync arms a one-shot fsync failure: the next Sync returns
// ErrSyncFailed without advancing the durable watermark — the crash
// harness's "process died inside the commit fsync".
func (m *MemDevice) FailNextSync() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failNext = true
}

// Syncs returns how many successful Syncs the device served.
func (m *MemDevice) Syncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Unsynced returns how many written bytes are not yet durable.
func (m *MemDevice) Unsynced() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.buf)) - m.synced
}

// Crash returns the surviving log image: the synced prefix plus up to
// keepUnsynced bytes of the unsynced tail (clamped to what was
// written). keepUnsynced models the OS having flushed part of the page
// cache on its own; a value inside a record yields a torn tail.
func (m *MemDevice) Crash(keepUnsynced int64) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	end := m.synced + keepUnsynced
	if end > int64(len(m.buf)) {
		end = int64(len(m.buf))
	}
	if end < m.synced {
		end = m.synced
	}
	return append([]byte(nil), m.buf[:end]...)
}
