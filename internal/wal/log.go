package wal

import (
	"sync"

	"corep/internal/disk"
)

// Stats counts log events.
type Stats struct {
	Appends    int64 // records appended (page images + commits + meta)
	PageImages int64 // page-image records appended
	Commits    int64 // commit records appended
	Fsyncs     int64 // device syncs issued
	MaxGroup   int64 // most commits made durable by a single fsync
	HeadLSN    int64 // next append offset
	DurableLSN int64 // durable through this offset
	Truncates  int64 // checkpoint truncations
}

// AvgGroup returns commits per fsync — the group-commit amortization
// factor (1.0 means every commit paid its own fsync).
func (s Stats) AvgGroup() float64 {
	if s.Fsyncs == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Fsyncs)
}

// Log is the append side of the redo log. Appends are written through
// to the device immediately (cheap: the OS buffers them) under the log
// mutex; durability is a separate step so concurrent committers share
// fsyncs.
//
// Group commit protocol: a committer calls Sync(lsn) after appending
// its commit record. If the log is already durable past lsn it returns
// at once. Otherwise the first committer to arrive becomes the leader:
// it notes the current head, releases the mutex, issues one device
// sync, and advances the durable watermark to the noted head — which
// covers every record appended before the sync started, including
// commit records other committers appended while a previous sync was
// in flight. Followers wait on a condition variable instead of issuing
// their own fsync. The longer a sync takes, the more commits pile into
// the next group: fsyncs per commit fall as concurrency rises.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond
	dev     Device
	head    int64 // next append offset
	durable int64 // synced through this offset
	syncing bool
	// pending holds the end-offsets of appended commit records not yet
	// durable, in append order — the group-size accounting.
	pending []int64

	stats Stats
}

// Open attaches a Log to a device, appending after its current
// contents. Run Recover (and truncate) first when the device may hold
// a previous life's log.
func Open(dev Device) (*Log, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	l := &Log{dev: dev, head: size, durable: size}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Device returns the underlying device.
func (l *Log) Device() Device { return l.dev }

// append writes one framed record at the head and returns the offset
// just past it (the LSN to wait on for durability).
func (l *Log) append(typ byte, pageID disk.PageID, payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := encodeRecord(nil, l.head, typ, pageID, payload)
	if _, err := l.dev.WriteAt(rec, l.head); err != nil {
		return 0, err
	}
	l.head += int64(len(rec))
	l.stats.Appends++
	switch typ {
	case recPage:
		l.stats.PageImages++
	case recCommit:
		l.stats.Commits++
		l.pending = append(l.pending, l.head)
	}
	return l.head, nil
}

// AppendPage logs a full page image. The image becomes effective at
// the next commit record; recovery discards images with no following
// commit.
func (l *Log) AppendPage(id disk.PageID, img []byte) (int64, error) {
	return l.append(recPage, id, img)
}

// AppendCommit logs a commit record carrying seq, ending the atomic
// batch of page images appended since the previous commit record.
func (l *Log) AppendCommit(seq uint64) (int64, error) {
	return l.append(recCommit, 0, commitPayload(seq))
}

// AppendMeta logs an opaque metadata blob; it becomes the current
// metadata when the following commit record lands.
func (l *Log) AppendMeta(blob []byte) (int64, error) {
	return l.append(recMeta, 0, blob)
}

// Sync blocks until the log is durable through lsn (group commit; see
// the type comment). An error means durability through lsn could not
// be established — the caller must not acknowledge its commit.
func (l *Log) Sync(lsn int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.head
		l.mu.Unlock()
		err := l.dev.Sync()
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.cond.Broadcast()
			return err
		}
		l.durable = target
		l.stats.Fsyncs++
		var group int64
		for len(l.pending) > 0 && l.pending[0] <= target {
			l.pending = l.pending[1:]
			group++
		}
		if group > l.stats.MaxGroup {
			l.stats.MaxGroup = group
		}
		l.cond.Broadcast()
	}
	return nil
}

// Truncate discards the whole log — the checkpoint contract: every
// page image the log carried is durable in the page file before this
// is called. The device is truncated and synced so a crash after the
// checkpoint finds an empty log, not a stale one.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.dev.Truncate(0); err != nil {
		return err
	}
	l.head, l.durable = 0, 0
	l.pending = l.pending[:0]
	l.stats.Truncates++
	return nil
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.HeadLSN = l.head
	s.DurableLSN = l.durable
	return s
}

// Close closes the underlying device (no implicit sync: an unsynced
// tail is exactly what a crash leaves, and orderly shutdown goes
// through a checkpoint that truncates the log anyway).
func (l *Log) Close() error {
	return l.dev.Close()
}
