package wal

import (
	"fmt"

	"corep/internal/disk"
)

// Result summarizes one recovery pass.
type Result struct {
	// Replayed counts page images applied (every image of every
	// committed batch, in log order).
	Replayed int `json:"replayed"`
	// Commits lists the commit sequence numbers replayed, in log order.
	Commits []uint64 `json:"commits,omitempty"`
	// Meta is the metadata blob of the last committed recMeta record,
	// nil if none was logged.
	Meta []byte `json:"-"`
	// DiscardedRecords counts valid records discarded because no commit
	// record followed them (the in-flight batch at the crash).
	DiscardedRecords int `json:"discarded_records"`
	// DiscardedBytes is the torn/garbage tail length past the last valid
	// record boundary.
	DiscardedBytes int64 `json:"discarded_bytes"`
	// TailLSN is the offset of the first byte not replayed — the end of
	// the last committed record.
	TailLSN int64 `json:"tail_lsn"`
}

// Recover scans the log from the start, validates every record, and
// REDOes committed batches: page images are buffered until their
// commit record is seen, then applied in log order via apply. The scan
// stops at the first invalid record (short, checksum mismatch, wrong
// LSN) — the torn tail a crash mid-append leaves — and everything from
// there on, plus any trailing committed-less images, is discarded.
//
// apply must install the full page image at id, extending the page
// space if the page was allocated after the last checkpoint (see
// disk.Sim.Restore / disk.FileDisk.Restore).
func Recover(dev Device, apply func(id disk.PageID, img []byte) error) (*Result, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	type pendingImg struct {
		id  disk.PageID
		img []byte
	}
	var pending []pendingImg
	var pendingMeta []byte
	off := int64(0)
	for off < size {
		rec, ok := decodeAt(dev, off, size)
		if !ok {
			break // torn tail: everything from off on is discarded
		}
		switch rec.typ {
		case recPage:
			pending = append(pending, pendingImg{id: rec.pageID, img: rec.payload})
		case recMeta:
			pendingMeta = rec.payload
		case recCommit:
			for _, p := range pending {
				if err := apply(p.id, p.img); err != nil {
					return res, fmt.Errorf("wal: replay page %d (commit %d): %w",
						p.id, commitSeq(rec.payload), err)
				}
				res.Replayed++
			}
			pending = pending[:0]
			if pendingMeta != nil {
				res.Meta = pendingMeta
				pendingMeta = nil
			}
			res.Commits = append(res.Commits, commitSeq(rec.payload))
			res.TailLSN = rec.next
		}
		off = rec.next
	}
	// Everything between the last commit and the scan stop is discarded:
	// valid-but-uncommitted records first, then the torn bytes.
	res.DiscardedRecords = len(pending)
	if pendingMeta != nil {
		res.DiscardedRecords++
	}
	res.DiscardedBytes = size - res.TailLSN
	return res, nil
}
