// Package wal implements a page-oriented redo log: checksummed,
// LSN-stamped records appended to a flat device, group commit that
// batches fsyncs across concurrent committers, and REDO recovery that
// replays committed page images and discards a torn tail.
//
// The log is physical (full page images) and redo-only. Three rules
// make that sound:
//
//   - Write-ahead: a dirty page may not be written to the page file
//     before the log record carrying its image is durable (the buffer
//     pool's no-steal gate enforces this — see buffer.SetNoSteal).
//   - Commit = durable commit record: a commit is acknowledged only
//     after its commit record's fsync returns. Group commit batches
//     many committers behind one fsync; an acknowledged commit is
//     always replayable.
//   - Atomic replay: recovery buffers page images until their commit
//     record is seen, so a tail torn between a commit's page images
//     and its commit record discards the whole commit, never half.
//
// LSNs are byte offsets into the log. Each record stamps its own LSN
// so a record read at the wrong offset (a stale tail from a recycled
// log file) is rejected exactly like a checksum mismatch.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"corep/internal/disk"
)

// Record types.
const (
	// recPage carries one full page image (payload = disk.PageSize).
	recPage = 1
	// recCommit ends one atomic batch of page images; payload is the
	// 8-byte commit sequence number.
	recCommit = 2
	// recMeta carries an opaque metadata blob (the database's sidecar
	// JSON) that becomes current when the following commit record lands.
	recMeta = 3
)

// headerSize is the fixed record header:
//
//	[0:4)   crc32c over bytes [4:headerSize+len) — header fields + payload
//	[4:8)   payload length (uint32)
//	[8:16)  lsn: the record's own start offset (uint64)
//	[16]    record type
//	[17:20) reserved, zero
//	[20:24) page id (recPage; zero otherwise)
const headerSize = 24

// maxPayload bounds a record payload: one page image plus slack for
// metadata blobs. Anything larger read during recovery is treated as
// tail corruption, not an allocation request.
const maxPayload = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed validation mid-log (not at
// the torn tail, where truncation is expected and silent).
var ErrCorrupt = errors.New("wal: corrupt record")

// encodeRecord appends a framed record to dst and returns the result.
// lsn must be the offset the record will be written at.
func encodeRecord(dst []byte, lsn int64, typ byte, pageID disk.PageID, payload []byte) []byte {
	start := len(dst)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(lsn))
	hdr[16] = typ
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(pageID))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start:start+4], crc)
	return dst
}

// recordSize returns the framed size of a record with the given payload
// length.
func recordSize(payloadLen int) int64 { return int64(headerSize + payloadLen) }

// decoded is one validated record.
type decoded struct {
	lsn     int64
	typ     byte
	pageID  disk.PageID
	payload []byte
	next    int64 // offset of the following record
}

// decodeAt reads and validates the record starting at off. A short
// read, checksum mismatch, LSN mismatch, or absurd length returns
// (zero, false): the scan treats everything from off on as the torn
// tail.
func decodeAt(dev Device, off, size int64) (decoded, bool) {
	if off+headerSize > size {
		return decoded{}, false
	}
	var hdr [headerSize]byte
	if _, err := dev.ReadAt(hdr[:], off); err != nil {
		return decoded{}, false
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
	if plen > maxPayload || off+headerSize+plen > size {
		return decoded{}, false
	}
	lsn := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	if lsn != off {
		return decoded{}, false
	}
	payload := make([]byte, plen)
	if plen > 0 {
		if _, err := dev.ReadAt(payload, off+headerSize); err != nil {
			return decoded{}, false
		}
	}
	crc := crc32.Checksum(hdr[4:], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(hdr[0:4]) {
		return decoded{}, false
	}
	typ := hdr[16]
	if typ != recPage && typ != recCommit && typ != recMeta {
		return decoded{}, false
	}
	if typ == recPage && plen != disk.PageSize {
		return decoded{}, false
	}
	if typ == recCommit && plen != 8 {
		return decoded{}, false
	}
	return decoded{
		lsn:     lsn,
		typ:     typ,
		pageID:  disk.PageID(binary.LittleEndian.Uint32(hdr[20:24])),
		payload: payload,
		next:    off + headerSize + plen,
	}, true
}

func commitSeq(payload []byte) uint64 { return binary.LittleEndian.Uint64(payload) }

func commitPayload(seq uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], seq)
	return p[:]
}

func typeName(typ byte) string {
	switch typ {
	case recPage:
		return "page"
	case recCommit:
		return "commit"
	case recMeta:
		return "meta"
	}
	return fmt.Sprintf("unknown(%d)", typ)
}
