package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"corep/internal/disk"
)

func pageImage(fill byte) []byte {
	img := make([]byte, disk.PageSize)
	for i := range img {
		img[i] = fill
	}
	return img
}

// applied collects replayed images keyed by page, last writer wins.
type applied map[disk.PageID][]byte

func (a applied) apply(id disk.PageID, img []byte) error {
	a[id] = append([]byte(nil), img...)
	return nil
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dev := NewMemDevice(0)
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPage(1, pageImage(0xAA)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPage(2, pageImage(0xBB)); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AppendCommit(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	got := applied{}
	res, err := Recover(NewMemDeviceBytes(dev.Crash(0)), got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 2 || len(res.Commits) != 1 || res.Commits[0] != 1 {
		t.Fatalf("unexpected recovery result: %+v", res)
	}
	if res.DiscardedBytes != 0 || res.DiscardedRecords != 0 {
		t.Fatalf("clean log reported discards: %+v", res)
	}
	if !bytes.Equal(got[1], pageImage(0xAA)) || !bytes.Equal(got[2], pageImage(0xBB)) {
		t.Fatal("replayed images differ from appended images")
	}
}

func TestUncommittedBatchDiscarded(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendPage(1, pageImage(1))
	lsn, _ := l.AppendCommit(1)
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	// Second batch: page image appended, commit record never written —
	// the crash hit between them. Even fully synced it must not replay.
	l.AppendPage(2, pageImage(2))
	if err := l.Sync(l.Stats().HeadLSN); err != nil {
		t.Fatal(err)
	}
	got := applied{}
	res, err := Recover(NewMemDeviceBytes(dev.Crash(1<<20)), got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) != 1 || res.Replayed != 1 {
		t.Fatalf("want only the committed batch replayed, got %+v", res)
	}
	if res.DiscardedRecords != 1 {
		t.Fatalf("want the uncommitted image discarded as a record, got %+v", res)
	}
	if _, ok := got[2]; ok {
		t.Fatal("uncommitted page image was replayed")
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendPage(1, pageImage(1))
	lsn1, _ := l.AppendCommit(1)
	if err := l.Sync(lsn1); err != nil {
		t.Fatal(err)
	}
	syncedEnd := lsn1
	// Second commit appended but never synced; the crash keeps an
	// arbitrary prefix of it. Every cut point must recover commit 1 and
	// only commit 1... except a cut past the full second commit record,
	// which legitimately recovers both.
	l.AppendPage(2, pageImage(2))
	lsn2, _ := l.AppendCommit(2)
	unsynced := lsn2 - syncedEnd
	for keep := int64(0); keep <= unsynced; keep += 7 {
		surv := dev.Crash(keep)
		got := applied{}
		res, err := Recover(NewMemDeviceBytes(surv), got.apply)
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if len(res.Commits) == 0 || res.Commits[0] != 1 {
			t.Fatalf("keep=%d: lost the acknowledged commit: %+v", keep, res)
		}
		if keep < unsynced && len(res.Commits) > 1 {
			t.Fatalf("keep=%d: replayed a commit whose record was torn: %+v", keep, res)
		}
		if keep < unsynced && res.DiscardedBytes != keep {
			t.Fatalf("keep=%d: want %d discarded tail bytes, got %d", keep, keep, res.DiscardedBytes)
		}
	}
	// The full unsynced tail surviving intact replays both commits.
	res, err := Recover(NewMemDeviceBytes(dev.Crash(unsynced)), applied{}.apply)
	if err != nil || len(res.Commits) != 2 {
		t.Fatalf("full tail: want both commits, got %+v (%v)", res, err)
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendPage(1, pageImage(1))
	mid, _ := l.AppendCommit(1)
	l.AppendPage(2, pageImage(2))
	end, _ := l.AppendCommit(2)
	l.Sync(end)
	surv := dev.Crash(0)
	surv[mid+10] ^= 0xFF // flip a bit inside the second batch
	res, err := Recover(NewMemDeviceBytes(surv), applied{}.apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) != 1 || res.Commits[0] != 1 {
		t.Fatalf("want scan to stop at the corrupt record, got %+v", res)
	}
	if res.DiscardedBytes == 0 {
		t.Fatal("corrupt tail not counted as discarded")
	}
}

func TestMetaRecordRecovered(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendMeta([]byte("v1"))
	lsn, _ := l.AppendCommit(1)
	l.Sync(lsn)
	l.AppendMeta([]byte("v2"))
	lsn2, _ := l.AppendCommit(2)
	l.Sync(lsn2)
	// A third meta with no commit must not become current.
	l.AppendMeta([]byte("v3-uncommitted"))
	l.Sync(l.Stats().HeadLSN)
	res, err := Recover(NewMemDeviceBytes(dev.Crash(1<<20)), applied{}.apply)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Meta) != "v2" {
		t.Fatalf("want last committed meta v2, got %q", res.Meta)
	}
}

func TestTruncateEmptiesLog(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendPage(1, pageImage(1))
	lsn, _ := l.AppendCommit(1)
	l.Sync(lsn)
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 0 {
		t.Fatalf("device not empty after truncate: %d bytes", sz)
	}
	res, err := Recover(dev, applied{}.apply)
	if err != nil || len(res.Commits) != 0 {
		t.Fatalf("truncated log replayed something: %+v (%v)", res, err)
	}
	// The log keeps working after truncation.
	lsn, err = l.AppendCommit(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	res, _ = Recover(NewMemDeviceBytes(dev.Crash(0)), applied{}.apply)
	if len(res.Commits) != 1 || res.Commits[0] != 2 {
		t.Fatalf("post-truncate commit not recovered: %+v", res)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := Open(dev)
	l.AppendPage(3, pageImage(3))
	lsn, _ := l.AppendCommit(7)
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	got := applied{}
	res, err := Recover(dev2, got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) != 1 || res.Commits[0] != 7 || !bytes.Equal(got[3], pageImage(3)) {
		t.Fatalf("file round trip failed: %+v", res)
	}
}

func TestSyncFailureDoesNotAcknowledge(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	l.AppendPage(1, pageImage(1))
	lsn, _ := l.AppendCommit(1)
	dev.FailNextSync()
	if err := l.Sync(lsn); err == nil {
		t.Fatal("want sync failure surfaced")
	}
	if got := l.Stats().DurableLSN; got != 0 {
		t.Fatalf("durable watermark advanced past a failed sync: %d", got)
	}
	// Retry succeeds and durability is established.
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().DurableLSN; got < lsn {
		t.Fatalf("durable %d < lsn %d after successful retry", got, lsn)
	}
}

// TestGroupCommitBatchesFsyncs drives concurrent committers against a
// device with a real sync delay and asserts fsyncs were amortized:
// strictly fewer fsyncs than commits, and every commit durable.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	const clients, perClient = 8, 25
	dev := NewMemDevice(200 * time.Microsecond)
	l, _ := Open(dev)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var seq struct {
		sync.Mutex
		n uint64
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seq.Lock()
				seq.n++
				s := seq.n
				if _, err := l.AppendPage(disk.PageID(s%16+1), pageImage(byte(s))); err != nil {
					seq.Unlock()
					errs <- err
					return
				}
				lsn, err := l.AppendCommit(s)
				seq.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(lsn); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != clients*perClient {
		t.Fatalf("want %d commits, got %d", clients*perClient, st.Commits)
	}
	if st.Fsyncs >= st.Commits {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d commits", st.Fsyncs, st.Commits)
	}
	if st.MaxGroup < 2 {
		t.Fatalf("no fsync ever covered more than one commit (max group %d)", st.MaxGroup)
	}
	res, err := Recover(NewMemDeviceBytes(dev.Crash(0)), applied{}.apply)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) != clients*perClient {
		t.Fatalf("want all %d acknowledged commits durable, got %d", clients*perClient, len(res.Commits))
	}
}

func TestDecodeRejectsBadRecords(t *testing.T) {
	dev := NewMemDevice(0)
	l, _ := Open(dev)
	lsn, _ := l.AppendCommit(1)
	l.Sync(lsn)
	size, _ := dev.Size()
	for name, mutate := range map[string]func([]byte){
		"crc":  func(b []byte) { b[0] ^= 0xFF },
		"len":  func(b []byte) { b[4] ^= 0x01 },
		"lsn":  func(b []byte) { b[8] ^= 0x01 },
		"type": func(b []byte) { b[16] = 0x7F },
	} {
		surv := dev.Crash(0)
		mutate(surv)
		if _, ok := decodeAt(NewMemDeviceBytes(surv), 0, size); ok {
			t.Errorf("%s mutation accepted", name)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Commits: 10, Fsyncs: 4}
	if g := s.AvgGroup(); g != 2.5 {
		t.Fatalf("AvgGroup = %v", g)
	}
	if typeName(recPage) != "page" || typeName(recCommit) != "commit" || typeName(recMeta) != "meta" {
		t.Fatal("typeName mismatch")
	}
	if typeName(99) != fmt.Sprintf("unknown(%d)", 99) {
		t.Fatal("typeName unknown mismatch")
	}
}
