// Package workload generates the paper's experimental databases and
// query sequences (§4).
//
// Defaults reproduce the paper's environment: |ParentRel| = 10,000
// tuples of ~200 bytes; SizeUnit = 5; |ChildRel| = 50,000/ShareFactor
// tuples of ~100 bytes (eqn. (1)); NumUnits = 10,000/UseFactor; a
// 100-page buffer; SizeCache = 1000 units. Retrieve queries ask for
// ParentRel.children.attr over a random contiguous OID range of NumTop
// parents; updates modify a fixed number of ChildRel tuples in place.
package workload

import (
	"fmt"

	"corep/internal/buffer"
)

// Defaults from §4 of the paper.
const (
	DefaultNumParents  = 10000
	DefaultSizeUnit    = 5
	DefaultParentBytes = 200
	DefaultChildBytes  = 100
	DefaultPoolPages   = 100
	DefaultCacheUnits  = 1000
	DefaultUpdateBatch = 10
)

// Config parameterizes one generated database.
type Config struct {
	NumParents    int // |ParentRel|
	SizeUnit      int // expected subobjects per unit
	UseFactor     int // parents sharing a unit
	OverlapFactor int // units sharing a subobject
	NumChildRel   int // how many relations subobjects are drawn from (§6.2)

	ParentBytes int // target encoded width of a ParentRel tuple
	ChildBytes  int // target encoded width of a ChildRel tuple
	PoolPages   int // buffer pool size in pages
	PoolPolicy  int // buffer replacement policy (buffer.LRU/Clock/Random)
	// PoolShards is the buffer pool's lock-stripe count. The default (1)
	// reproduces the paper's single-client eviction behaviour exactly;
	// concurrent serving (harness.Serve) raises it.
	PoolShards int

	// ProbeBatch turns on page-ordered batching of child-OID probes.
	// Off (the default), strategies probe one OID at a time in arrival
	// order exactly as the paper's INGRES testbed did, preserving every
	// figure's I/O counts; the concurrent serving path turns it on to
	// trade fidelity for fewer page fetches.
	ProbeBatch bool

	// PrefetchEnabled turns on the asynchronous prefetcher: chain scans
	// and page-ordered batch probes overlap upcoming page reads with
	// query work. Off (the default), every access is synchronous exactly
	// as the paper's testbed — all Figure 3–7 cells stay bit-identical.
	PrefetchEnabled bool
	// PrefetchDepth bounds the prefetch window (in-flight + staged
	// pages). 0 with PrefetchEnabled means buffer.DefaultPrefetchDepth.
	PrefetchDepth int

	Clustered    bool // also build ClusterRel + its ISAM OID index
	CacheUnits   int  // SizeCache; 0 disables the cache
	CacheBuckets int  // hash buckets of the Cache relation

	UpdateBatch int // ChildRel tuples modified per update query

	// ScatterClusters deliberately mis-clusters ClusterRel at load time:
	// every subobject's owner is drawn uniformly at random instead of from
	// the unit's home parent, modelling a database whose physical layout
	// has decayed far from the access pattern. Requires Clustered; used as
	// the starting point of the online-reclustering experiments.
	ScatterClusters bool

	// ZipfTheta skews parent popularity in generated sequences: retrieve
	// ranges and update targets concentrate on low-numbered parents with
	// zipf exponent θ (ddtxn/OCB-style contention). 0 (the default) keeps
	// the paper's uniform draws on the exact historic rng stream, so
	// every existing figure and bench cell is unchanged.
	ZipfTheta float64

	Seed int64
}

// WithDefaults fills zero fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.NumParents == 0 {
		c.NumParents = DefaultNumParents
	}
	if c.SizeUnit == 0 {
		c.SizeUnit = DefaultSizeUnit
	}
	if c.UseFactor == 0 {
		c.UseFactor = 1
	}
	if c.OverlapFactor == 0 {
		c.OverlapFactor = 1
	}
	if c.NumChildRel == 0 {
		c.NumChildRel = 1
	}
	if c.ParentBytes == 0 {
		c.ParentBytes = DefaultParentBytes
	}
	if c.ChildBytes == 0 {
		c.ChildBytes = DefaultChildBytes
	}
	if c.PoolPages == 0 {
		c.PoolPages = DefaultPoolPages
	}
	if c.PoolShards == 0 {
		c.PoolShards = 1
	}
	if c.CacheBuckets == 0 {
		c.CacheBuckets = 256
	}
	if c.PrefetchEnabled && c.PrefetchDepth == 0 {
		c.PrefetchDepth = buffer.DefaultPrefetchDepth
	}
	if c.UpdateBatch == 0 {
		c.UpdateBatch = DefaultUpdateBatch
	}
	return c
}

// ShareFactor returns UseFactor × OverlapFactor — the expected number of
// objects sharing a subobject (§3.3).
func (c Config) ShareFactor() int { return c.UseFactor * c.OverlapFactor }

// Validate rejects configurations the generator cannot honour.
func (c Config) Validate() error {
	if c.NumParents < 1 || c.SizeUnit < 1 || c.UseFactor < 1 || c.OverlapFactor < 1 || c.NumChildRel < 1 {
		return fmt.Errorf("workload: non-positive parameter in %+v", c)
	}
	if c.NumParents < c.UseFactor {
		return fmt.Errorf("workload: NumParents %d < UseFactor %d", c.NumParents, c.UseFactor)
	}
	numUnits := c.NumParents / c.UseFactor
	if numUnits < c.NumChildRel {
		return fmt.Errorf("workload: %d units cannot span %d child relations", numUnits, c.NumChildRel)
	}
	if c.SizeUnit*8+120 > c.ParentBytes*4 {
		return fmt.Errorf("workload: SizeUnit %d too large for ParentBytes %d", c.SizeUnit, c.ParentBytes)
	}
	if !buffer.Policy(c.PoolPolicy).Valid() {
		return fmt.Errorf("workload: unknown PoolPolicy %d", c.PoolPolicy)
	}
	if c.PoolShards < 0 {
		return fmt.Errorf("workload: negative PoolShards %d", c.PoolShards)
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("workload: negative PrefetchDepth %d", c.PrefetchDepth)
	}
	if c.ZipfTheta < 0 {
		return fmt.Errorf("workload: negative ZipfTheta %g", c.ZipfTheta)
	}
	if c.ScatterClusters && !c.Clustered {
		return fmt.Errorf("workload: ScatterClusters requires Clustered")
	}
	return nil
}

func (c Config) String() string {
	s := fmt.Sprintf("parents=%d sizeunit=%d UF=%d OF=%d (SF=%d) nchildrel=%d clustered=%v cache=%d seed=%d",
		c.NumParents, c.SizeUnit, c.UseFactor, c.OverlapFactor, c.ShareFactor(), c.NumChildRel,
		c.Clustered, c.CacheUnits, c.Seed)
	// Appended only when skewed so historic bench-envelope config strings
	// stay byte-identical at the default.
	if c.ZipfTheta != 0 {
		s += fmt.Sprintf(" zipf=%.3g", c.ZipfTheta)
	}
	if c.ScatterClusters {
		s += " scattered=true"
	}
	return s
}
