package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"corep/internal/buffer"
	"corep/internal/cache"
	"corep/internal/catalog"
	"corep/internal/cluster"
	"corep/internal/disk"
	"corep/internal/isam"
	"corep/internal/object"
	"corep/internal/obs"
	"corep/internal/storage"
	"corep/internal/tuple"
	"corep/internal/txn"
)

// Field indices shared by ParentRel and ChildRel (after the key):
// ret1=1, ret2=2, ret3=3 — "Ret1, ret2 and ret3 are integer fields and
// occur in the target lists of the retrieve queries" (§4).
const (
	FieldRet1 = 1
	FieldRet2 = 2
	FieldRet3 = 3
)

// DB is one generated database instance: the relations, the generation
// bookkeeping the strategies need (units, assignments), and the
// simulated hardware underneath.
type DB struct {
	Cfg  Config
	Disk *disk.Sim
	Pool *buffer.Pool
	Cat  *catalog.Catalog

	Parent   *catalog.Relation
	Children []*catalog.Relation

	// ClusterRel is built when Cfg.Clustered: one relation holding both
	// objects and subobjects, B-tree on cluster#, ISAM index on OID (§4).
	ClusterRel *catalog.Relation

	// Cache is the outside value cache, built when Cfg.CacheUnits > 0.
	Cache *cache.Cache

	ParentSchema  *tuple.Schema
	ChildSchema   *tuple.Schema
	ClusterSchema *tuple.Schema

	// Units[i] is unit i's subobject OIDs; UnitUsers[i] the parent keys
	// referencing it; ParentUnit[p] the unit of parent key p.
	Units      []object.Unit
	UnitUsers  [][]int64
	ParentUnit []int

	// Assignment is the clustering assignment (when Clustered).
	Assignment *cluster.Assignment

	// Obs is the observability context threaded to the strategies and
	// operators running over this database. Zero value = disabled;
	// installed by AttachObs.
	Obs obs.Ctx

	// Latch is the database-level read/write latch for concurrent serving
	// (harness.Serve): retrieves hold it shared, updates exclusive. The
	// single-client harness never takes it, and versioned serving
	// (Versions != nil) retires it entirely. See DESIGN.md §Concurrency
	// and §11.
	Latch sync.RWMutex

	// WAL, when non-nil, is the attached write-ahead log (EnableWAL in
	// wal.go): the crash-chaos harness commits through it and severs the
	// database with CrashAndRecover.
	WAL *WALState

	// Versions, when non-nil, is the epoch-stamped version layer: every
	// strategy's Update installs versions here instead of writing base
	// pages, and retrieves overlay a pinned snapshot epoch. Nil (the
	// default) keeps the in-place single-writer paths bit-identical.
	// Installed by EnableVersioning; folded back by DrainVersions.
	Versions *txn.Store

	// Reclust, when non-nil, is the online reclustering state: the heat
	// tracker fed from retrieve spans and the placement map redirecting
	// migrated subobjects to extent pages. Nil (the default) keeps every
	// read path on the load-time layout. Installed by EnableReclustering.
	Reclust *ReclustState

	childByRelID map[uint16]*catalog.Relation
	childCount   map[uint16]int
	rng          *rand.Rand
	zipf         map[int]*zipfTable // per-range draw tables for Cfg.ZipfTheta
}

// AttachObs wires an observability configuration to this database: the
// tracer snapshots this DB's disk and pool counters, and the context is
// propagated to the buffer pool and the cache so that operator- and
// cache-level spans share one trace. Call with enabled options at most
// once per database; each database gets its own tracer (spans assume
// single-threaded use) while the sink and registry may be shared.
func (db *DB) AttachObs(o obs.Options) {
	ctx := obs.Ctx{Metrics: o.Metrics, Prefix: o.Prefix}
	sink := o.Sink
	// Reclustering taps the span stream for its heat signal: tee the
	// feeder in front of the caller's sink (enable reclustering before
	// attaching obs). With no caller sink the feeder becomes the sink.
	if db.Reclust != nil {
		if sink != nil {
			sink = obs.Tee{sink, db.Reclust.feeder}
		} else {
			sink = db.Reclust.feeder
		}
	}
	if sink != nil {
		ctx.Trace = obs.NewTracer(db.ioSnapshot, sink)
	}
	db.Obs = ctx
	db.Pool.SetObs(ctx)
	if db.Cache != nil {
		db.Cache.Obs = ctx
	}
}

// ioSnapshot is the tracer's counter source: disk I/O plus pool events.
func (db *DB) ioSnapshot() obs.IO {
	ds := db.Disk.Stats()
	ps := db.Pool.Stats()
	return obs.IO{
		Reads: ds.Reads, Writes: ds.Writes,
		Hits: ps.Hits, Misses: ps.Misses, Flushes: ps.Flushes,
	}
}

// Build generates a database per cfg. The buffer pool is flushed and
// invalidated afterwards, and disk counters reset, so measurements start
// cold and load I/O is not charged to queries.
func Build(cfg Config) (*DB, error) {
	db, err := newSkeleton(cfg)
	if err != nil {
		return nil, err
	}
	cfg = db.Cfg

	if err := db.buildChildren(); err != nil {
		return nil, err
	}
	if err := db.buildUnitsAndParents(); err != nil {
		return nil, err
	}
	if cfg.Clustered {
		if err := db.buildCluster(); err != nil {
			return nil, err
		}
	}
	if cfg.CacheUnits > 0 {
		c, err := cache.New(db.Pool, cfg.CacheUnits, cfg.CacheBuckets, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		db.Cache = c
	}
	if err := db.ResetCold(); err != nil {
		return nil, err
	}
	db.attachPrefetcher()
	return db, nil
}

// newSkeleton creates the empty database: simulated hardware, catalog,
// schemas, generator state. Build and BuildTwoLevel load it.
func newSkeleton(cfg Config) (*DB, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := disk.NewSim()
	pool, err := buffer.NewSharded(d, cfg.PoolPages, buffer.Policy(cfg.PoolPolicy), cfg.PoolShards)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	db := &DB{
		Cfg:          cfg,
		Disk:         d,
		Pool:         pool,
		Cat:          catalog.New(pool),
		childByRelID: make(map[uint16]*catalog.Relation),
		childCount:   make(map[uint16]int),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
	}
	db.ParentSchema = tuple.NewSchema(
		tuple.Field{Name: "OID", Kind: tuple.KInt},
		tuple.Field{Name: "ret1", Kind: tuple.KInt},
		tuple.Field{Name: "ret2", Kind: tuple.KInt},
		tuple.Field{Name: "ret3", Kind: tuple.KInt},
		tuple.Field{Name: "dummy", Kind: tuple.KString, Width: cfg.ParentBytes},
		tuple.Field{Name: "children", Kind: tuple.KBytes},
	)
	db.ChildSchema = tuple.NewSchema(
		tuple.Field{Name: "OID", Kind: tuple.KInt},
		tuple.Field{Name: "ret1", Kind: tuple.KInt},
		tuple.Field{Name: "ret2", Kind: tuple.KInt},
		tuple.Field{Name: "ret3", Kind: tuple.KInt},
		tuple.Field{Name: "dummy", Kind: tuple.KString, Width: cfg.ChildBytes},
	)
	db.ClusterSchema = tuple.NewSchema(
		tuple.Field{Name: "cluster#", Kind: tuple.KInt},
		tuple.Field{Name: "OID", Kind: tuple.KInt},
		tuple.Field{Name: "ret1", Kind: tuple.KInt},
		tuple.Field{Name: "ret2", Kind: tuple.KInt},
		tuple.Field{Name: "ret3", Kind: tuple.KInt},
		tuple.Field{Name: "dummy", Kind: tuple.KString, Width: cfg.ChildBytes},
		tuple.Field{Name: "children", Kind: tuple.KBytes},
	)

	return db, nil
}

// ResetCold flushes and empties the buffer pool and zeroes the disk
// counters: the next query starts from a cold, clean state.
func (db *DB) ResetCold() error {
	// Quiesce the prefetcher first: Invalidate refuses pinned pages, and
	// staged prefetch pages hold pins. Nil-safe no-op when prefetch is off.
	db.Pool.Prefetcher().Drain()
	if err := db.Pool.FlushAll(); err != nil {
		return err
	}
	if err := db.Pool.Invalidate(); err != nil {
		return err
	}
	db.Disk.ResetStats()
	return nil
}

// attachPrefetcher starts the asynchronous prefetcher when the config
// asks for it. Called after the build's ResetCold so load I/O is never
// prefetched; idempotent per database.
func (db *DB) attachPrefetcher() {
	if !db.Cfg.PrefetchEnabled {
		return
	}
	db.Pool.SetPrefetcher(buffer.NewPrefetcher(db.Pool, db.Cfg.PrefetchDepth, 0))
}

// Close releases background resources (the prefetcher's workers). Safe
// to call twice and concurrently with running queries: in-flight scans
// fall back to synchronous reads.
func (db *DB) Close() {
	pf := db.Pool.Prefetcher()
	db.Pool.SetPrefetcher(nil)
	pf.Close()
}

// EnableVersioning installs the version store, switching every
// strategy's Update path from in-place base writes to epoch-published
// versions (see internal/txn). Idempotent. Call before starting
// concurrent clients; fold the versions back with DrainVersions once
// they have quiesced.
func (db *DB) EnableVersioning() {
	if db.Versions == nil {
		db.Versions = txn.New(0)
		// Publish an empty bootstrap epoch so every versioned snapshot
		// carries epoch ≥ 1: the cache's watermark API reserves epoch 0
		// as the "unversioned caller" sentinel (LookupSnap(u, 0) is the
		// historic Lookup), and a genuine snapshot must never alias it.
		db.Versions.BeginUpdate(nil).Commit(nil)
	}
}

// ChildByRelID resolves a child relation from an OID's relation id.
func (db *DB) ChildByRelID(id uint16) (*catalog.Relation, error) {
	r, ok := db.childByRelID[id]
	if !ok {
		return nil, fmt.Errorf("workload: OID references unknown child relation %d", id)
	}
	return r, nil
}

// ChildCount returns the cardinality of the child relation with the
// given relation id (tracked at build time so callers need no I/O).
func (db *DB) ChildCount(id uint16) int { return db.childCount[id] }

// NumUnits returns the number of distinct units.
func (db *DB) NumUnits() int { return len(db.Units) }

// UnitOf returns the unit referenced by the parent with key p.
func (db *DB) UnitOf(p int64) object.Unit { return db.Units[db.ParentUnit[p]] }

// buildChildren creates and loads the NumChildRel child relations.
func (db *DB) buildChildren() error {
	cfg := db.Cfg
	numUnits := cfg.NumParents / cfg.UseFactor
	for r := 0; r < cfg.NumChildRel; r++ {
		unitsHere := numUnits / cfg.NumChildRel
		if r < numUnits%cfg.NumChildRel {
			unitsHere++
		}
		// Exact-overlap sizing: unitsHere×SizeUnit slots over
		// nChild×OverlapFactor appearances.
		nChild := (unitsHere*cfg.SizeUnit + cfg.OverlapFactor - 1) / cfg.OverlapFactor
		if nChild < cfg.SizeUnit {
			nChild = cfg.SizeUnit
		}
		name := "ChildRel"
		if cfg.NumChildRel > 1 {
			name = fmt.Sprintf("ChildRel%d", r)
		}
		rel, err := db.Cat.CreateBTree(name, db.ChildSchema)
		if err != nil {
			return err
		}
		pad := db.padFor(db.ChildSchema, cfg.ChildBytes, 0)
		for k := int64(0); k < int64(nChild); k++ {
			rec, err := tuple.Encode(nil, db.ChildSchema, tuple.Tuple{
				tuple.IntVal(int64(object.NewOID(rel.ID, k))),
				tuple.IntVal(db.rng.Int63n(1 << 30)),
				tuple.IntVal(db.rng.Int63n(1 << 30)),
				tuple.IntVal(db.rng.Int63n(1 << 30)),
				tuple.StrVal(pad),
			})
			if err != nil {
				return err
			}
			if err := rel.Tree.Insert(k, rec); err != nil {
				return err
			}
		}
		db.Children = append(db.Children, rel)
		db.childByRelID[rel.ID] = rel
		db.childCount[rel.ID] = nChild
	}
	return nil
}

// buildUnitsAndParents generates the units (exact OverlapFactor), the
// parent→unit assignment (exact UseFactor up to rounding) and loads
// ParentRel.
func (db *DB) buildUnitsAndParents() error {
	cfg := db.Cfg
	numUnits := cfg.NumParents / cfg.UseFactor

	// Units per child relation, mirroring buildChildren's split.
	unitRel := make([]int, 0, numUnits)
	for r := 0; r < cfg.NumChildRel; r++ {
		unitsHere := numUnits / cfg.NumChildRel
		if r < numUnits%cfg.NumChildRel {
			unitsHere++
		}
		for i := 0; i < unitsHere; i++ {
			unitRel = append(unitRel, r)
		}
	}

	// Per relation: slot multiset with each child appearing OverlapFactor
	// times, shuffled, chopped into units, with within-unit duplicates
	// repaired.
	db.Units = make([]object.Unit, 0, numUnits)
	ui := 0
	for r := 0; r < cfg.NumChildRel; r++ {
		rel := db.Children[r]
		n := db.childCount[rel.ID]
		unitsHere := 0
		for _, ur := range unitRel {
			if ur == r {
				unitsHere++
			}
		}
		slots := make([]int64, 0, unitsHere*cfg.SizeUnit)
		for c := 0; len(slots) < unitsHere*cfg.SizeUnit; c++ {
			slots = append(slots, int64(c%n))
		}
		// The c%n construction already yields each child ≈OverlapFactor
		// times; shuffle for randomness.
		db.rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		for u := 0; u < unitsHere; u++ {
			chunk := slots[u*cfg.SizeUnit : (u+1)*cfg.SizeUnit]
			db.fixDuplicates(chunk, slots[(u+1)*cfg.SizeUnit:], int64(n))
			unit := make(object.Unit, cfg.SizeUnit)
			for i, c := range chunk {
				unit[i] = object.NewOID(rel.ID, c)
			}
			db.Units = append(db.Units, unit)
			ui++
		}
	}

	// Parent → unit: each unit appears UseFactor times (padded to cover
	// every parent), shuffled.
	assign := make([]int, 0, cfg.NumParents)
	for u := 0; u < numUnits; u++ {
		for k := 0; k < cfg.UseFactor; k++ {
			assign = append(assign, u)
		}
	}
	for len(assign) < cfg.NumParents {
		assign = append(assign, db.rng.Intn(numUnits))
	}
	assign = assign[:cfg.NumParents]
	db.rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	db.ParentUnit = assign
	db.UnitUsers = make([][]int64, numUnits)
	for p, u := range assign {
		db.UnitUsers[u] = append(db.UnitUsers[u], int64(p))
	}

	// Load ParentRel.
	rel, err := db.Cat.CreateBTree("ParentRel", db.ParentSchema)
	if err != nil {
		return err
	}
	db.Parent = rel
	childrenBytes := cfg.SizeUnit * 8
	pad := db.padFor(db.ParentSchema, cfg.ParentBytes, childrenBytes)
	for p := int64(0); p < int64(cfg.NumParents); p++ {
		unit := db.Units[assign[p]]
		rec, err := tuple.Encode(nil, db.ParentSchema, tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(rel.ID, p))),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.StrVal(pad),
			tuple.BytesVal(object.EncodeOIDs(unit)),
		})
		if err != nil {
			return err
		}
		if err := rel.Tree.Insert(p, rec); err != nil {
			return err
		}
	}
	return nil
}

// fixDuplicates repairs within-unit duplicate subobjects by swapping
// with later slots, falling back to resampling.
func (db *DB) fixDuplicates(chunk, rest []int64, n int64) {
	seen := make(map[int64]bool, len(chunk))
	for i := 0; i < len(chunk); i++ {
		if !seen[chunk[i]] {
			seen[chunk[i]] = true
			continue
		}
		fixed := false
		if len(rest) > 0 {
			for try := 0; try < 8; try++ {
				j := db.rng.Intn(len(rest))
				if !seen[rest[j]] {
					chunk[i], rest[j] = rest[j], chunk[i]
					seen[chunk[i]] = true
					fixed = true
					break
				}
			}
		}
		if !fixed {
			for {
				c := db.rng.Int63n(n)
				if !seen[c] {
					chunk[i] = c
					seen[c] = true
					break
				}
			}
		}
	}
}

// buildCluster computes the clustering assignment and materializes
// ClusterRel: for each parent key p in order, the parent's row followed
// by the subobjects clustered with it, all under cluster# = p; then the
// static ISAM index on OID.
func (db *DB) buildCluster() error {
	a, err := cluster.Assign(db.Units, db.UnitUsers, db.rng)
	if err != nil {
		return err
	}
	if db.Cfg.ScatterClusters {
		// Decayed-layout mode: re-draw every owner uniformly so almost no
		// subobject sits with a parent that uses it. Runs after Assign so
		// the rng draws up to this point — and hence all generated values —
		// match the statically-clustered build of the same seed.
		oids := make([]object.OID, 0, len(a.Owner))
		for oid := range a.Owner {
			oids = append(oids, oid)
		}
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
		for _, oid := range oids {
			a.Owner[oid] = db.rng.Int63n(int64(db.Cfg.NumParents))
		}
	}
	db.Assignment = a

	// Invert: parent key → owned subobjects. Map iteration order is
	// random, so sort each owner's subobjects: within-cluster row order
	// decides RID placement in ClusterRel, and an unsorted order made
	// clustered probe I/O vary run to run under an identical seed.
	owned := make(map[int64][]object.OID)
	for oid, p := range a.Owner {
		owned[p] = append(owned[p], oid)
	}
	for _, oids := range owned {
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	}

	rel, err := db.Cat.CreateBTree("ClusterRel", db.ClusterSchema)
	if err != nil {
		return err
	}
	db.ClusterRel = rel

	// Cache child tuples for re-encoding into ClusterRel.
	childTuple := func(oid object.OID) (tuple.Tuple, error) {
		crel, err := db.ChildByRelID(oid.Rel())
		if err != nil {
			return nil, err
		}
		rec, err := crel.Tree.Get(oid.Key())
		if err != nil {
			return nil, err
		}
		return tuple.Decode(db.ChildSchema, rec)
	}
	for p := int64(0); p < int64(db.Cfg.NumParents); p++ {
		prec, err := db.Parent.Tree.Get(p)
		if err != nil {
			return err
		}
		pt, err := tuple.Decode(db.ParentSchema, prec)
		if err != nil {
			return err
		}
		row := tuple.Tuple{tuple.IntVal(p), pt[0], pt[1], pt[2], pt[3], pt[4], pt[5]}
		rec, err := tuple.Encode(nil, db.ClusterSchema, row)
		if err != nil {
			return err
		}
		if err := rel.Tree.Insert(p, rec); err != nil {
			return err
		}
		for _, oid := range owned[p] {
			ct, err := childTuple(oid)
			if err != nil {
				return err
			}
			row := tuple.Tuple{tuple.IntVal(p), ct[0], ct[1], ct[2], ct[3], ct[4], tuple.BytesVal(nil)}
			rec, err := tuple.Encode(nil, db.ClusterSchema, row)
			if err != nil {
				return err
			}
			if err := rel.Tree.Insert(p, rec); err != nil {
				return err
			}
		}
	}

	// Static ISAM index on ClusterRel.OID.
	var entries []isam.Entry
	oidIdx := db.ClusterSchema.MustIndex("OID")
	err = rel.Tree.ScanLeavesRID(func(rid storage.RID, _ int64, payload []byte) (bool, error) {
		v, err := tuple.DecodeField(db.ClusterSchema, payload, oidIdx)
		if err != nil {
			return false, err
		}
		entries = append(entries, isam.Entry{Key: v.Int, RID: rid})
		return true, nil
	})
	if err != nil {
		return err
	}
	idx, err := isam.Build(db.Pool, entries)
	if err != nil {
		return err
	}
	rel.Index = idx
	return nil
}

// padFor computes the dummy padding string that brings an encoded tuple
// of the schema to the target width, given extra variable bytes already
// accounted for (the children OID list).
func (db *DB) padFor(s *tuple.Schema, target, extraVar int) string {
	fixed := 0
	for _, f := range s.Fields {
		switch f.Kind {
		case tuple.KInt:
			fixed += 8
		default:
			fixed += 2
		}
	}
	pad := target - fixed - extraVar
	if pad < 1 {
		pad = 1
	}
	return strings.Repeat("x", pad)
}
