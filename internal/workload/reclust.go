package workload

import (
	"fmt"
	"sort"
	"sync"

	"corep/internal/heap"
	"corep/internal/object"
	"corep/internal/reclust"
	"corep/internal/storage"
	"corep/internal/tuple"
)

// Online reclustering for the clustered layout (DESIGN.md §13): the
// heat tracker learns which parents the workload actually touches, and
// ReclustStep incrementally migrates the hottest parents' whole units —
// parent row first, then every subobject — onto shared extent pages, so
// the read path serves a migrated group without touching the B-tree at
// all. Migration is copy forwarding — the old ClusterRel rows are never
// deleted, the placement map just redirects readers — so a batch needs
// no B-tree surgery and a crash can only lose the redirect, never a
// row.

// DefaultReclustBatch is how many hot parents one ReclustStep migrates
// when the caller passes no budget.
const DefaultReclustBatch = 8

// ReclustState is the per-database online-reclustering state,
// installed by EnableReclustering.
type ReclustState struct {
	// Heat is the decayed per-parent access tracker, fed from retrieve
	// spans (lo/hi attributes) through the obs tee.
	Heat *reclust.Tracker
	// Place is the epoch-versioned placement map consulted by the
	// dfsclust read path before the ISAM fallback.
	Place *reclust.Map

	db     *DB
	feeder *reclust.Feeder

	// mu serializes migration batches against each other and against
	// the extent write-through of ApplyUpdateCluster.
	mu     sync.Mutex
	extent *heap.File // lazily created; reset after a crash

	migrated   int64
	batches    int64
	pagesDirty int64
	dropped    int64
}

// EnableReclustering installs the reclustering state: a heat tracker
// bounded to heatCap parents (<=0 means NumParents) with the given
// half-life in queries (<=0 means reclust.DefaultHalfLife), an empty
// placement map, and the span feeder. Requires the clustered layout.
// Call before AttachObs so the heat feeder joins the span sink tee;
// default-off — databases that never call this keep every read and
// update path untouched.
func (db *DB) EnableReclustering(heatCap, halfLife int) error {
	if !db.Cfg.Clustered {
		return fmt.Errorf("workload: reclustering requires the clustered layout")
	}
	if db.Reclust != nil {
		return fmt.Errorf("workload: reclustering already enabled")
	}
	if heatCap <= 0 {
		heatCap = db.Cfg.NumParents
	}
	tr := reclust.NewTracker(heatCap, halfLife)
	db.Reclust = &ReclustState{
		Heat:   tr,
		Place:  reclust.NewMap(),
		db:     db,
		feeder: &reclust.Feeder{Tracker: tr, SpanName: "strategy.dfsclust/retrieve"},
	}
	return nil
}

// Read fetches a placed record by RID straight through the buffer
// pool. Deliberately independent of the extent file handle: placements
// that survived a crash stay readable even though the post-crash
// extent chain starts fresh.
func (rs *ReclustState) Read(rid storage.RID) ([]byte, error) {
	buf, err := rs.db.Pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	pg := storage.Page{Buf: buf}
	rec, err := pg.Record(int(rid.Slot))
	if err != nil {
		rs.db.Pool.Unpin(rid.Page, false)
		return nil, err
	}
	out := append([]byte(nil), rec...)
	rs.db.Pool.Unpin(rid.Page, false)
	return out, nil
}

// Stats snapshots the reclustering counters.
func (rs *ReclustState) Stats() reclust.Stats {
	touches, evictions := rs.Heat.Counters()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return reclust.Stats{
		Tracked:    rs.Heat.Len(),
		Touches:    touches,
		Evictions:  evictions,
		Placements: rs.Place.Len(),
		Migrated:   rs.migrated,
		Batches:    rs.batches,
		PagesDirty: rs.pagesDirty,
		Dropped:    rs.dropped,
	}
}

// reclustMove is one parent's migration work within a batch: the
// parent's own row (oids[0]) followed by the unit members to copy.
type reclustMove struct {
	parent int64
	oids   []object.OID
}

// ReclustStep runs one migration batch: pick up to maxParents of the
// hottest not-yet-migrated parents, copy each one's whole unit —
// parent row, then members in unit order — onto shared extent pages,
// and publish the placements. Concurrent with versioned serving: the copy reads base
// pages no versioned updater writes, and publication rides a txn
// commit — the per-object latch stripes are held, the placement map
// and the cache watermarks advance inside the commit critical section,
// so no snapshot ever sees half a batch. With the WAL enabled the
// batch's page images and placement blob become durable before the
// redirect publishes; a crash in between loses only orphan extent rows.
// Returns how many subobjects moved (0 = nothing left worth moving).
func (db *DB) ReclustStep(maxParents int) (int, error) {
	rs := db.Reclust
	if rs == nil {
		return 0, fmt.Errorf("workload: reclustering not enabled")
	}
	if maxParents <= 0 {
		maxParents = DefaultReclustBatch
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()

	batch := rs.planLocked(maxParents)
	if len(batch) == 0 {
		return 0, nil
	}

	// Copy the rows, hottest parents packed together in ascending key
	// order. Nothing is visible until the publish below, so a fault
	// mid-copy orphans extent slots and changes no answer.
	entries := make(map[object.OID]reclust.Entry)
	var moved []object.OID
	pages := map[storage.RID]bool{} // distinct pages touched, keyed by {page,0}
	for _, mv := range batch {
		for _, oid := range mv.oids {
			rid, err := rs.appendCopyLocked(mv.parent, oid)
			if err != nil {
				rs.dropped += int64(len(moved))
				return 0, err
			}
			entries[oid] = reclust.Entry{RID: rid, Owner: mv.parent}
			moved = append(moved, oid)
			pages[storage.RID{Page: rid.Page}] = true
		}
	}

	// Durability first: the batch's extent page images plus the
	// placement state including this batch ride one WAL commit. If the
	// commit fails nothing was published — the extent rows are orphans
	// and recovery restores the previous placements.
	if db.WAL != nil {
		combined := rs.Place.Snapshot()
		for oid, e := range entries {
			combined[oid] = e
		}
		if _, err := db.WALCommitMeta(reclust.EncodePlacements(combined)); err != nil {
			rs.dropped += int64(len(moved))
			return 0, err
		}
	}

	// Publish. Versioned serving: take the moved objects' latch stripes
	// and install the redirects inside the commit critical section, so
	// they become visible atomically with a fresh epoch and the cache
	// watermarks cover them before any snapshot at that epoch exists.
	if db.Versions != nil {
		u := db.Versions.BeginUpdate(moved)
		u.Commit(func(e uint64) {
			for oid, ent := range entries {
				ent.Epoch = e
				entries[oid] = ent
			}
			rs.Place.Publish(entries)
			if db.Cache != nil {
				db.Cache.MarkInvalid(moved, e)
			}
		})
		if db.Cache != nil {
			for _, oid := range moved {
				if _, err := db.Cache.Invalidate(oid); err != nil {
					return len(moved), err
				}
			}
		}
	} else {
		rs.Place.Publish(entries)
		if db.Cache != nil {
			for _, oid := range moved {
				if _, err := db.Cache.Invalidate(oid); err != nil {
					return len(moved), err
				}
			}
		}
	}

	for _, mv := range batch {
		db.Assignment.Rehome(mv.oids[1:], mv.parent)
	}
	rs.migrated += int64(len(moved))
	rs.batches++
	rs.pagesDirty += int64(len(pages))
	return len(moved), nil
}

// planLocked selects the batch: walk parents hottest-first, keep those
// not yet migrated (no placement for the parent's own row), stop at
// maxParents. A parent's move is its whole unit — the parent row first,
// then every member that has no placement yet; a member already placed
// (by an earlier batch, or claimed by a hotter parent in this one)
// keeps its existing copy, which the reader finds by per-OID lookup.
func (rs *ReclustState) planLocked(maxParents int) []reclustMove {
	db := rs.db
	claimed := map[object.OID]bool{}
	var batch []reclustMove
	for _, kh := range rs.Heat.TopN(-1) {
		p := kh.Key
		if p < 0 || p >= int64(db.Cfg.NumParents) {
			continue
		}
		pOID := object.NewOID(db.Parent.ID, p)
		if _, ok := rs.Place.Latest(pOID); ok {
			continue // unit already migrated
		}
		move := []object.OID{pOID}
		for _, oid := range db.UnitOf(p) {
			if claimed[oid] {
				continue
			}
			if _, ok := rs.Place.Latest(oid); ok {
				continue
			}
			claimed[oid] = true
			move = append(move, oid)
		}
		batch = append(batch, reclustMove{parent: p, oids: move})
		if len(batch) >= maxParents {
			break
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].parent < batch[j].parent })
	return batch
}

// appendCopyLocked copies oid's current row into the extent, re-keyed
// to its new home parent, and returns the copy's RID.
func (rs *ReclustState) appendCopyLocked(parent int64, oid object.OID) (storage.RID, error) {
	db := rs.db
	if rs.extent == nil {
		f, err := heap.Create(db.Pool)
		if err != nil {
			return storage.RID{}, err
		}
		rs.extent = f
	}
	// Source of the copy: the newest placement if one exists (keeps a
	// re-migrated row's write-through history), else the base row.
	var payload []byte
	if e, ok := rs.Place.Latest(oid); ok {
		rec, err := rs.Read(e.RID)
		if err != nil {
			return storage.RID{}, err
		}
		payload = rec
	} else {
		rid, err := db.ClusterRel.Index.Probe(int64(oid))
		if err != nil {
			return storage.RID{}, err
		}
		_, rec, err := db.ClusterRel.Tree.GetAt(rid)
		if err != nil {
			return storage.RID{}, err
		}
		payload = rec
	}
	t, err := tuple.Decode(db.ClusterSchema, payload)
	if err != nil {
		return storage.RID{}, err
	}
	t[0] = tuple.IntVal(parent) // cluster# follows the new home
	nrec, err := tuple.Encode(nil, db.ClusterSchema, t)
	if err != nil {
		return storage.RID{}, err
	}
	return rs.extent.Append(nrec)
}

// writeThrough keeps a migrated copy coherent with an in-place base
// update: ApplyUpdateCluster calls it per target after rewriting the
// base row. Serialized against migration batches by rs.mu, so
// copy-then-update and update-then-copy both leave the extent row
// carrying the new value.
func (rs *ReclustState) writeThrough(oid object.OID, ret1 int64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e, ok := rs.Place.Latest(oid)
	if !ok {
		return nil
	}
	rec, err := rs.Read(e.RID)
	if err != nil {
		return err
	}
	t, err := tuple.Decode(rs.db.ClusterSchema, rec)
	if err != nil {
		return err
	}
	t[2] = tuple.IntVal(ret1) // ret1 is field 2 in ClusterSchema
	nrec, err := tuple.Encode(nil, rs.db.ClusterSchema, t)
	if err != nil {
		return err
	}
	buf, err := rs.db.Pool.Pin(e.RID.Page)
	if err != nil {
		return err
	}
	err = storage.Page{Buf: buf}.Update(int(e.RID.Slot), nrec)
	rs.db.Pool.Unpin(e.RID.Page, err == nil)
	return err
}

// restoreAfterCrash resets the state to what recovery proved durable:
// the placements from the last committed WAL metadata blob (all
// visible — the version store died with the process) and a fresh
// extent chain for future batches. Old extent pages referenced by the
// surviving placements stay readable via Read.
func (rs *ReclustState) restoreAfterCrash(entries map[object.OID]reclust.Entry) {
	rs.mu.Lock()
	rs.Place.Replace(entries)
	rs.extent = nil
	rs.mu.Unlock()
}
