package workload

import (
	"testing"

	"corep/internal/object"
	"corep/internal/tuple"
)

func buildReclustDB(t *testing.T) *DB {
	t.Helper()
	db, err := Build(Config{NumParents: 60, Seed: 5, Clustered: true, ScatterClusters: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.EnableReclustering(0, 0); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEnableReclusteringErrors(t *testing.T) {
	flat, err := Build(Config{NumParents: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if err := flat.EnableReclustering(0, 0); err == nil {
		t.Error("reclustering enabled on a non-clustered layout")
	}
	if _, err := flat.ReclustStep(1); err == nil {
		t.Error("ReclustStep without EnableReclustering succeeded")
	}

	db := buildReclustDB(t)
	if err := db.EnableReclustering(0, 0); err == nil {
		t.Error("double EnableReclustering succeeded")
	}
}

// TestReclustStepMigratesWholeUnits: a step moves the hottest parents'
// whole units — parent row plus every member — and each placed copy
// reads back, re-keyed to its home parent, with the original values.
func TestReclustStepMigratesWholeUnits(t *testing.T) {
	db := buildReclustDB(t)
	rs := db.Reclust
	rs.Heat.Touch(3, 5)
	rs.Heat.Touch(7, 3)

	moved, err := db.ReclustStep(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + len(db.UnitOf(3)) + len(db.UnitOf(7)) // parent rows + members
	if moved != want {
		t.Fatalf("moved %d objects, want %d", moved, want)
	}

	oidIdx := db.ClusterSchema.MustIndex("OID")
	for _, p := range []int64{3, 7} {
		unit := append(object.Unit{object.NewOID(db.Parent.ID, p)}, db.UnitOf(p)...)
		for _, oid := range unit {
			e, ok := rs.Place.Latest(oid)
			if !ok {
				t.Fatalf("unit %d member %v has no placement", p, oid)
			}
			if e.Owner != p {
				t.Errorf("placement owner %d, want %d", e.Owner, p)
			}
			rec, err := rs.Read(e.RID)
			if err != nil {
				t.Fatalf("placed copy of %v unreadable: %v", oid, err)
			}
			row, err := tuple.Decode(db.ClusterSchema, rec)
			if err != nil {
				t.Fatal(err)
			}
			if row[0].Int != p {
				t.Errorf("copy of %v re-keyed to cluster %d, want %d", oid, row[0].Int, p)
			}
			if object.OID(row[oidIdx].Int) != oid {
				t.Errorf("copy carries OID %v, want %v", object.OID(row[oidIdx].Int), oid)
			}
		}
	}

	st := rs.Stats()
	if st.Migrated != int64(moved) || st.Batches != 1 || st.Placements != moved || st.PagesDirty == 0 {
		t.Errorf("stats after one step: %+v", st)
	}

	// The same parents are not re-migrated.
	again, err := db.ReclustStep(2)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second step re-moved %d objects", again)
	}
}

// TestReclustWriteThrough: an in-place update of a migrated member must
// land in the extent copy too — both physical locations answer with
// the new value.
func TestReclustWriteThrough(t *testing.T) {
	db := buildReclustDB(t)
	rs := db.Reclust
	rs.Heat.Touch(9, 1)
	if _, err := db.ReclustStep(1); err != nil {
		t.Fatal(err)
	}
	target := db.UnitOf(9)[0]
	const newVal = 987654
	if err := db.ApplyUpdateCluster(Op{Kind: OpUpdate, Targets: []object.OID{target}, NewRet1: []int64{newVal}}); err != nil {
		t.Fatal(err)
	}
	e, ok := rs.Place.Latest(target)
	if !ok {
		t.Fatal("updated member lost its placement")
	}
	rec, err := rs.Read(e.RID)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tuple.Decode(db.ClusterSchema, rec)
	if err != nil {
		t.Fatal(err)
	}
	if row[2].Int != newVal {
		t.Fatalf("extent copy carries ret1=%d, want %d", row[2].Int, newVal)
	}
}

// TestReclustCrashRestore: after a clean-sync crash, recovery restores
// exactly the committed placements and every one of them still reads
// back through the pool.
func TestReclustCrashRestore(t *testing.T) {
	db := buildReclustDB(t)
	if err := db.EnableWAL(0); err != nil {
		t.Fatal(err)
	}
	rs := db.Reclust
	rs.Heat.Touch(2, 4)
	rs.Heat.Touch(11, 2)
	if _, err := db.ReclustStep(2); err != nil {
		t.Fatal(err)
	}
	committed := rs.Place.Snapshot()
	if len(committed) == 0 {
		t.Fatal("no placements committed")
	}

	res, err := db.CrashAndRecover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commits) == 0 {
		t.Fatal("synced migration commit lost in crash")
	}
	restored := rs.Place.Snapshot()
	if len(restored) != len(committed) {
		t.Fatalf("restored %d placements, committed %d", len(restored), len(committed))
	}
	for oid, want := range committed {
		got, ok := restored[oid]
		if !ok || got.RID != want.RID {
			t.Fatalf("placement of %v: restored %+v, committed %+v", oid, got, want)
		}
		rec, err := rs.Read(got.RID)
		if err != nil {
			t.Fatalf("restored placement of %v unreadable: %v", oid, err)
		}
		if _, err := tuple.Decode(db.ClusterSchema, rec); err != nil {
			t.Fatalf("restored copy of %v corrupt: %v", oid, err)
		}
	}
}
