package workload

import (
	"math"
	"math/rand"
	"sort"

	"corep/internal/object"
	"corep/internal/tuple"
)

// OpKind distinguishes retrieves from updates in a query sequence.
type OpKind uint8

// Operation kinds.
const (
	OpRetrieve OpKind = iota
	OpUpdate
)

// Op is one query of a sequence. Retrieves are
//
//	retrieve (ParentRel.children.attr) where val1 ≤ ParentRel.OID ≤ val2
//
// with attr "randomly chosen (for each query separately) from retl,
// ret2, ret3" (§4). Updates modify a fixed batch of ChildRel tuples in
// place; the new values travel with the op so that every strategy (and
// every layout) applies identical changes.
type Op struct {
	Kind OpKind

	// Retrieve fields.
	Lo, Hi  int64 // parent key range, inclusive
	AttrIdx int   // FieldRet1..FieldRet3

	// Update fields.
	Targets []object.OID // ChildRel tuples to modify
	NewRet1 []int64      // new ret1 value per target
}

// MaxUpdateFraction caps Pr(UPDATE): a sequence must retain retrieves to
// compare retrieval strategies, so "Pr(UPDATE) → 1" is modelled as 0.95
// (documented in DESIGN.md).
const MaxUpdateFraction = 0.95

// GenSequence produces a sequence with numRetrieves retrieve queries at
// the given NumTop, mixed with updates so that the update fraction of
// the sequence is prUpdate. The mix is shuffled deterministically from
// the DB's seed stream.
func (db *DB) GenSequence(numRetrieves int, prUpdate float64, numTop int) []Op {
	return db.GenMixedSequence(numRetrieves, prUpdate, []int{numTop})
}

// GenMixedSequence is GenSequence with NumTop drawn per query from the
// given set — the "good query mix" SMART needs (§5.3).
func (db *DB) GenMixedSequence(numRetrieves int, prUpdate float64, numTops []int) []Op {
	if prUpdate > MaxUpdateFraction {
		prUpdate = MaxUpdateFraction
	}
	if prUpdate < 0 {
		prUpdate = 0
	}
	numUpdates := 0
	if prUpdate > 0 {
		numUpdates = int(math.Round(prUpdate / (1 - prUpdate) * float64(numRetrieves)))
	}
	ops := make([]Op, 0, numRetrieves+numUpdates)
	for i := 0; i < numRetrieves; i++ {
		numTop := numTops[db.rng.Intn(len(numTops))]
		if numTop > db.Cfg.NumParents {
			numTop = db.Cfg.NumParents
		}
		lo := int64(0)
		if db.Cfg.NumParents > numTop {
			// θ = 0 must take the exact historic Int63n call so existing
			// sequences (and every figure cell) are bit-identical.
			if db.Cfg.ZipfTheta > 0 {
				lo = db.zipfDraw(db.Cfg.NumParents - numTop + 1)
			} else {
				lo = db.rng.Int63n(int64(db.Cfg.NumParents - numTop + 1))
			}
		}
		ops = append(ops, Op{
			Kind:    OpRetrieve,
			Lo:      lo,
			Hi:      lo + int64(numTop) - 1,
			AttrIdx: FieldRet1 + db.rng.Intn(3),
		})
	}
	for i := 0; i < numUpdates; i++ {
		ops = append(ops, db.genUpdate())
	}
	db.rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// genUpdate picks UpdateBatch random ChildRel tuples and new ret1
// values. With ZipfTheta > 0, each target is a member of a zipf-hot
// parent's unit instead of a uniform child — updates then collide with
// the skewed retrieve ranges on the same subobjects, which is the
// contention the -txn sweep measures.
func (db *DB) genUpdate() Op {
	op := Op{Kind: OpUpdate}
	for i := 0; i < db.Cfg.UpdateBatch; i++ {
		if db.Cfg.ZipfTheta > 0 {
			unit := db.UnitOf(db.zipfDraw(db.Cfg.NumParents))
			op.Targets = append(op.Targets, unit[db.rng.Intn(len(unit))])
			op.NewRet1 = append(op.NewRet1, db.rng.Int63n(1<<30))
			continue
		}
		rel := db.Children[db.rng.Intn(len(db.Children))]
		n := db.childCount[rel.ID]
		if n == 0 {
			continue
		}
		op.Targets = append(op.Targets, object.NewOID(rel.ID, db.rng.Int63n(int64(n))))
		op.NewRet1 = append(op.NewRet1, db.rng.Int63n(1<<30))
	}
	return op
}

// zipfTable is a bounded generalized-zipf sampler: cum[i] holds the
// prefix sum of 1/(i+1)^θ, so a uniform draw binary-searched into cum
// selects value i with probability proportional to 1/(i+1)^θ.
// (math/rand.Zipf requires s > 1; the contention literature sweeps
// θ ∈ [0, 1], so we build our own table.)
type zipfTable struct {
	cum []float64
}

func newZipfTable(n int, theta float64) *zipfTable {
	cum := make([]float64, n)
	s := 0.0
	for i := 0; i < n; i++ {
		s += 1 / math.Pow(float64(i+1), theta)
		cum[i] = s
	}
	return &zipfTable{cum: cum}
}

func (z *zipfTable) draw(rng *rand.Rand) int64 {
	r := rng.Float64() * z.cum[len(z.cum)-1]
	return int64(sort.SearchFloat64s(z.cum, r))
}

// zipfDraw samples from [0, n) with the config's skew, caching one
// table per distinct range (sequence generation is single-threaded on
// the DB's rng, so the cache needs no lock).
func (db *DB) zipfDraw(n int) int64 {
	if db.zipf == nil {
		db.zipf = make(map[int]*zipfTable)
	}
	t, ok := db.zipf[n]
	if !ok {
		t = newZipfTable(n, db.Cfg.ZipfTheta)
		db.zipf[n] = t
	}
	return t.draw(db.rng)
}

// ApplyUpdateBase applies an update op to the base layout (ChildRel
// B-trees): probe by key, modify ret1 in place. This is the update path
// of the non-clustered strategies; the caller is charged the I/O.
func (db *DB) ApplyUpdateBase(op Op) error {
	for i, oid := range op.Targets {
		rel, err := db.ChildByRelID(oid.Rel())
		if err != nil {
			return err
		}
		rec, err := rel.Tree.Get(oid.Key())
		if err != nil {
			return err
		}
		t, err := tuple.Decode(db.ChildSchema, rec)
		if err != nil {
			return err
		}
		t[FieldRet1] = tuple.IntVal(op.NewRet1[i])
		nrec, err := tuple.Encode(nil, db.ChildSchema, t)
		if err != nil {
			return err
		}
		if err := rel.Tree.Update(oid.Key(), nrec); err != nil {
			return err
		}
	}
	return nil
}

// ApplyUpdateVersioned applies an update op through the version store
// instead of the base layout: targets are validated, staged, and
// published as one epoch, with the per-stripe write latches held from
// BeginUpdate through Commit. mark (optional) runs inside the publish
// critical section — the dfscache strategy advances its invalidation
// watermarks there. No base page is written, so concurrent snapshot
// readers never race a B-tree mutation; DrainVersions folds the values
// back once serving quiesces.
func (db *DB) ApplyUpdateVersioned(op Op, mark func(epoch uint64)) error {
	u := db.Versions.BeginUpdate(op.Targets)
	for i, oid := range op.Targets {
		if _, err := db.ChildByRelID(oid.Rel()); err != nil {
			u.Abort()
			return err
		}
		u.Stage(oid, op.NewRet1[i])
	}
	u.Commit(mark)
	return nil
}

// DrainVersions folds every pending version back into the base layout:
// the newest value per object, ascending OID order, each replayed as a
// one-target update op through apply (normally the strategy's own
// Update, so each layout reuses its exact in-place semantics). The
// store is detached for the duration so apply's updates write through
// to base pages rather than re-versioning. Callers must have quiesced
// concurrent use first.
func (db *DB) DrainVersions(apply func(Op) error) (int, error) {
	vs := db.Versions
	if vs == nil {
		return 0, nil
	}
	db.Versions = nil
	defer func() { db.Versions = vs }()
	return vs.Drain(func(oid object.OID, val int64) error {
		return apply(Op{Kind: OpUpdate, Targets: []object.OID{oid}, NewRet1: []int64{val}})
	})
}

// ApplyUpdateCluster applies an update op to the clustered layout:
// random access via the ISAM OID index, then an in-place page update
// ("the updates ... are translated into equivalent queries on
// ClusterRel", §4). With reclustering enabled the update also writes
// through to the target's migrated extent copy, keeping both physical
// locations carrying the same value regardless of which one a reader's
// placement lookup resolves.
func (db *DB) ApplyUpdateCluster(op Op) error {
	idx := db.ClusterRel.Index
	for i, oid := range op.Targets {
		rid, err := idx.Probe(int64(oid))
		if err != nil {
			return err
		}
		_, payload, err := db.ClusterRel.Tree.GetAt(rid)
		if err != nil {
			return err
		}
		t, err := tuple.Decode(db.ClusterSchema, payload)
		if err != nil {
			return err
		}
		t[2] = tuple.IntVal(op.NewRet1[i]) // ret1 is field 2 in ClusterSchema
		nrec, err := tuple.Encode(nil, db.ClusterSchema, t)
		if err != nil {
			return err
		}
		if err := db.ClusterRel.Tree.UpdateAt(rid, nrec); err != nil {
			return err
		}
		if db.Reclust != nil {
			if err := db.Reclust.writeThrough(oid, op.NewRet1[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
