package workload

import (
	"fmt"

	"corep/internal/catalog"
	"corep/internal/object"
	"corep/internal/tuple"
)

// Two-level databases back the multi-dot extension experiment: queries
// like
//
//	retrieve (ParentRel.children.children.attr)
//
// "require more levels of relationships to be explored" (§3), and §5.1
// predicts BFSNODUP's duplicate elimination pays more as levels grow.
// The second level reuses the generator's unit model: parents reference
// units of MidRel objects, and each MidRel object references a unit of
// LeafRel objects, with its own sharing factor.

// TwoLevelConfig parameterizes a two-level database. Level 1 (parents →
// mids) uses Config's factors; level 2 (mids → leaves) uses the Leaf*
// factors, defaulting to the level-1 values.
type TwoLevelConfig struct {
	Config
	LeafUseFactor     int // mids sharing a leaf unit
	LeafOverlapFactor int // leaf units sharing a leaf
}

// WithDefaults fills zero fields.
func (c TwoLevelConfig) WithDefaults() TwoLevelConfig {
	c.Config = c.Config.WithDefaults()
	if c.LeafUseFactor == 0 {
		c.LeafUseFactor = c.UseFactor
	}
	if c.LeafOverlapFactor == 0 {
		c.LeafOverlapFactor = c.OverlapFactor
	}
	return c
}

// TwoLevelDB is a two-level database: ParentRel → MidRel → LeafRel.
// Children[0] of the embedded DB is MidRel — its tuples use the parent
// schema and carry their own children attribute — and Children[1] is
// LeafRel.
type TwoLevelDB struct {
	*DB

	// MidUnits[i] is mid-unit i (leaf OIDs); MidUnitOf[m] the unit index
	// of the mid with key m.
	MidUnits  []object.Unit
	MidUnitOf []int
}

// Mid returns the intermediate relation.
func (t *TwoLevelDB) Mid() *catalog.Relation { return t.Children[0] }

// Leaf returns the leaf relation.
func (t *TwoLevelDB) Leaf() *catalog.Relation { return t.Children[1] }

// BuildTwoLevel generates a two-level database. Cardinalities follow
// the flat generator level by level: |MidRel| = NumParents × SizeUnit /
// ShareFactor₁, |LeafRel| = |MidRel| × SizeUnit / ShareFactor₂.
func BuildTwoLevel(cfg TwoLevelConfig) (*TwoLevelDB, error) {
	cfg = cfg.WithDefaults()
	if cfg.NumChildRel != 1 {
		return nil, fmt.Errorf("workload: two-level databases use a single mid relation")
	}
	db, err := newSkeleton(cfg.Config)
	if err != nil {
		return nil, err
	}
	t := &TwoLevelDB{DB: db}

	// Cardinalities.
	numMidUnits := cfg.NumParents / cfg.UseFactor
	nMid := (numMidUnits*cfg.SizeUnit + cfg.OverlapFactor - 1) / cfg.OverlapFactor
	if nMid < cfg.SizeUnit {
		nMid = cfg.SizeUnit
	}
	numLeafUnits := nMid / cfg.LeafUseFactor
	if numLeafUnits < 1 {
		numLeafUnits = 1
	}
	nLeaf := (numLeafUnits*cfg.SizeUnit + cfg.LeafOverlapFactor - 1) / cfg.LeafOverlapFactor
	if nLeaf < cfg.SizeUnit {
		nLeaf = cfg.SizeUnit
	}

	// LeafRel.
	leaf, err := db.Cat.CreateBTree("LeafRel", db.ChildSchema)
	if err != nil {
		return nil, err
	}
	leafPad := db.padFor(db.ChildSchema, cfg.ChildBytes, 0)
	for k := int64(0); k < int64(nLeaf); k++ {
		rec, err := tuple.Encode(nil, db.ChildSchema, tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(leaf.ID, k))),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.StrVal(leafPad),
		})
		if err != nil {
			return nil, err
		}
		if err := leaf.Tree.Insert(k, rec); err != nil {
			return nil, err
		}
	}

	// Leaf units (exact LeafOverlapFactor) and mid→unit assignment
	// (exact LeafUseFactor), mirroring the flat generator.
	t.MidUnits = db.genUnits(numLeafUnits, nLeaf, leaf.ID)
	t.MidUnitOf = db.genAssignment(nMid, numLeafUnits, cfg.LeafUseFactor)

	// MidRel: parent-schema tuples carrying their leaf units.
	mid, err := db.Cat.CreateBTree("MidRel", db.ParentSchema)
	if err != nil {
		return nil, err
	}
	midPad := db.padFor(db.ParentSchema, cfg.ChildBytes, cfg.SizeUnit*8)
	for m := int64(0); m < int64(nMid); m++ {
		rec, err := tuple.Encode(nil, db.ParentSchema, tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(mid.ID, m))),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.StrVal(midPad),
			tuple.BytesVal(object.EncodeOIDs(t.MidUnits[t.MidUnitOf[m]])),
		})
		if err != nil {
			return nil, err
		}
		if err := mid.Tree.Insert(m, rec); err != nil {
			return nil, err
		}
	}

	// Register both relations; Children[0] must be MidRel so the flat
	// machinery (unit generation over Children, updates) works.
	db.Children = []*catalog.Relation{mid, leaf}
	db.childByRelID[mid.ID] = mid
	db.childByRelID[leaf.ID] = leaf
	db.childCount[mid.ID] = nMid
	db.childCount[leaf.ID] = nLeaf

	// Parent units over MidRel and ParentRel itself.
	db.Units = db.genUnits(numMidUnits, nMid, mid.ID)
	db.ParentUnit = db.genAssignment(cfg.NumParents, numMidUnits, cfg.UseFactor)
	db.UnitUsers = make([][]int64, numMidUnits)
	for p, u := range db.ParentUnit {
		db.UnitUsers[u] = append(db.UnitUsers[u], int64(p))
	}
	parent, err := db.Cat.CreateBTree("ParentRel", db.ParentSchema)
	if err != nil {
		return nil, err
	}
	db.Parent = parent
	parentPad := db.padFor(db.ParentSchema, cfg.ParentBytes, cfg.SizeUnit*8)
	for p := int64(0); p < int64(cfg.NumParents); p++ {
		rec, err := tuple.Encode(nil, db.ParentSchema, tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(parent.ID, p))),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.IntVal(db.rng.Int63n(1 << 30)),
			tuple.StrVal(parentPad),
			tuple.BytesVal(object.EncodeOIDs(db.Units[db.ParentUnit[p]])),
		})
		if err != nil {
			return nil, err
		}
		if err := parent.Tree.Insert(p, rec); err != nil {
			return nil, err
		}
	}
	if err := db.ResetCold(); err != nil {
		return nil, err
	}
	db.attachPrefetcher()
	return t, nil
}

// genUnits produces count units of SizeUnit distinct members drawn from
// [0, n) of relation relID, each member appearing with the generator's
// exact-overlap multiplicity.
func (db *DB) genUnits(count, n int, relID uint16) []object.Unit {
	slots := make([]int64, 0, count*db.Cfg.SizeUnit)
	for c := 0; len(slots) < count*db.Cfg.SizeUnit; c++ {
		slots = append(slots, int64(c%n))
	}
	db.rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	units := make([]object.Unit, 0, count)
	for u := 0; u < count; u++ {
		chunk := slots[u*db.Cfg.SizeUnit : (u+1)*db.Cfg.SizeUnit]
		db.fixDuplicates(chunk, slots[(u+1)*db.Cfg.SizeUnit:], int64(n))
		unit := make(object.Unit, db.Cfg.SizeUnit)
		for i, c := range chunk {
			unit[i] = object.NewOID(relID, c)
		}
		units = append(units, unit)
	}
	return units
}

// genAssignment assigns each of n referencers one of numUnits units,
// with each unit used exactly useFactor times (padded randomly).
func (db *DB) genAssignment(n, numUnits, useFactor int) []int {
	assign := make([]int, 0, n)
	for u := 0; u < numUnits; u++ {
		for k := 0; k < useFactor; k++ {
			assign = append(assign, u)
		}
	}
	for len(assign) < n {
		assign = append(assign, db.rng.Intn(numUnits))
	}
	assign = assign[:n]
	db.rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	return assign
}
