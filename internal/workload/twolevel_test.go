package workload

import (
	"testing"

	"corep/internal/object"
	"corep/internal/tuple"
)

func TestBuildTwoLevelCardinalities(t *testing.T) {
	db, err := BuildTwoLevel(TwoLevelConfig{
		Config: Config{NumParents: 400, SizeUnit: 5, UseFactor: 2, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// |MidRel| = 400*5/2 = 1000; |LeafRel| = 1000*5/2 = 2500.
	if n := db.ChildCount(db.Mid().ID); n != 1000 {
		t.Fatalf("|MidRel| = %d", n)
	}
	if n := db.ChildCount(db.Leaf().ID); n != 2500 {
		t.Fatalf("|LeafRel| = %d", n)
	}
	if len(db.MidUnits) != 500 {
		t.Fatalf("mid units = %d", len(db.MidUnits))
	}
}

func TestTwoLevelOIDResolution(t *testing.T) {
	db, err := BuildTwoLevel(TwoLevelConfig{
		Config: Config{NumParents: 200, SizeUnit: 3, UseFactor: 2, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Walk parent 7 down both levels; every OID must resolve and every
	// mid tuple must carry exactly SizeUnit leaf OIDs.
	unit := db.UnitOf(7)
	if len(unit) != 3 {
		t.Fatalf("parent unit = %d", len(unit))
	}
	childrenIdx := db.ParentSchema.MustIndex("children")
	for _, mo := range unit {
		if mo.Rel() != db.Mid().ID {
			t.Fatalf("parent references %v, not MidRel", mo)
		}
		rec, err := db.Mid().Tree.Get(mo.Key())
		if err != nil {
			t.Fatal(err)
		}
		v, err := tuple.DecodeField(db.ParentSchema, rec, childrenIdx)
		if err != nil {
			t.Fatal(err)
		}
		leaves, err := object.DecodeOIDs(v.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(leaves) != 3 {
			t.Fatalf("mid %v has %d leaves", mo, len(leaves))
		}
		for _, lo := range leaves {
			if lo.Rel() != db.Leaf().ID {
				t.Fatalf("mid references %v, not LeafRel", lo)
			}
			if _, err := db.Leaf().Tree.Get(lo.Key()); err != nil {
				t.Fatalf("leaf %v: %v", lo, err)
			}
		}
	}
}

func TestTwoLevelMidUnitsExact(t *testing.T) {
	db, err := BuildTwoLevel(TwoLevelConfig{
		Config:        Config{NumParents: 300, SizeUnit: 5, UseFactor: 3, Seed: 2},
		LeafUseFactor: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, u := range db.MidUnitOf {
		counts[u]++
	}
	for u, c := range counts {
		if c < 5 || c > 6 { // exact 5 plus random padding remainder
			t.Fatalf("leaf unit %d used %d times", u, c)
		}
	}
	for i, u := range db.MidUnits {
		seen := map[object.OID]bool{}
		for _, o := range u {
			if seen[o] {
				t.Fatalf("mid unit %d has duplicates", i)
			}
			seen[o] = true
		}
	}
}

func TestTwoLevelRejectsMultiChildRel(t *testing.T) {
	_, err := BuildTwoLevel(TwoLevelConfig{
		Config: Config{NumParents: 100, SizeUnit: 2, UseFactor: 2, NumChildRel: 3, Seed: 1},
	})
	if err == nil {
		t.Fatal("multi-child-relation two-level build accepted")
	}
}

func TestTwoLevelStartsCold(t *testing.T) {
	db, err := BuildTwoLevel(TwoLevelConfig{
		Config: Config{NumParents: 100, SizeUnit: 2, UseFactor: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := db.Disk.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("not cold: %+v", s)
	}
}
