package workload

import (
	"math/rand"

	"corep/internal/buffer"
	"corep/internal/catalog"
	"corep/internal/disk"
	"corep/internal/object"
	"corep/internal/tuple"
)

// Value-based databases store subobject values inline in the parents
// (§2.2.1): "the 'value' ... of a subobject is stored with the
// referencing object. Of course, when a subobject is shared by more
// than one object we need to replicate its value wherever required."
// The paper defers comparing this column of the representation matrix
// against the OID column to "a future study" (§2.4) — the ext-value
// experiment runs that comparison.
//
// Logical content matches the OID-representation database built from
// the same Config: the same units of the same subobjects, assigned to
// the same number of parents; only the physical representation differs.

// ValueDB is a database using the value-based primary representation.
type ValueDB struct {
	Cfg  Config
	Disk *disk.Sim
	Pool *buffer.Pool
	Cat  *catalog.Catalog

	// Parent holds everything: each tuple embeds its unit's subobject
	// values in the `values` attribute.
	Parent *catalog.Relation
	Schema *tuple.Schema

	// ChildSchema shapes the embedded subobject tuples.
	ChildSchema *tuple.Schema

	// Homes maps each logical subobject to the parents embedding a
	// replica — the update fan-out of the representation.
	Homes map[object.OID][]int64

	// Units and ParentUnit mirror the flat generator's bookkeeping.
	Units      []object.Unit
	ParentUnit []int

	childRelID uint16
	childCount int
	rng        *rand.Rand
}

// BuildValueBased generates a value-based database for cfg.
func BuildValueBased(cfg Config) (*ValueDB, error) {
	base, err := newSkeleton(cfg)
	if err != nil {
		return nil, err
	}
	cfg = base.Cfg
	v := &ValueDB{
		Cfg:         cfg,
		Disk:        base.Disk,
		Pool:        base.Pool,
		Cat:         base.Cat,
		ChildSchema: base.ChildSchema,
		Homes:       make(map[object.OID][]int64),
		rng:         base.rng,
	}
	v.Schema = tuple.NewSchema(
		tuple.Field{Name: "OID", Kind: tuple.KInt},
		tuple.Field{Name: "ret1", Kind: tuple.KInt},
		tuple.Field{Name: "ret2", Kind: tuple.KInt},
		tuple.Field{Name: "ret3", Kind: tuple.KInt},
		tuple.Field{Name: "dummy", Kind: tuple.KString, Width: cfg.ParentBytes},
		tuple.Field{Name: "values", Kind: tuple.KBytes},
	)

	// Generate the logical subobjects in memory (they have no relation of
	// their own — value-based subobjects "cannot be referenced from
	// elsewhere", §2.2.1). A pseudo relation id tags their OIDs for the
	// Homes bookkeeping.
	numUnits := cfg.NumParents / cfg.UseFactor
	nChild := (numUnits*cfg.SizeUnit + cfg.OverlapFactor - 1) / cfg.OverlapFactor
	if nChild < cfg.SizeUnit {
		nChild = cfg.SizeUnit
	}
	v.childRelID = 0xFFFE
	v.childCount = nChild
	childPad := base.padFor(base.ChildSchema, cfg.ChildBytes, 0)
	childTuples := make([]tuple.Tuple, nChild)
	for k := 0; k < nChild; k++ {
		childTuples[k] = tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(v.childRelID, int64(k)))),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.StrVal(childPad),
		}
	}
	v.Units = base.genUnits(numUnits, nChild, v.childRelID)
	v.ParentUnit = base.genAssignment(cfg.NumParents, numUnits, cfg.UseFactor)

	parent, err := v.Cat.CreateBTree("ParentRelV", v.Schema)
	if err != nil {
		return nil, err
	}
	v.Parent = parent
	// Size the dummy so the non-values part matches the OID layout's
	// parent body (fixed fields + padding ≈ ParentBytes − unit list).
	pad := base.padFor(v.Schema, cfg.ParentBytes, cfg.SizeUnit*8)
	for p := int64(0); p < int64(cfg.NumParents); p++ {
		unit := v.Units[v.ParentUnit[p]]
		rows := make([]tuple.Tuple, len(unit))
		for i, oid := range unit {
			rows[i] = childTuples[oid.Key()]
			v.Homes[oid] = append(v.Homes[oid], p)
		}
		inline, err := object.EncodeNested(v.ChildSchema, rows)
		if err != nil {
			return nil, err
		}
		rec, err := tuple.Encode(nil, v.Schema, tuple.Tuple{
			tuple.IntVal(int64(object.NewOID(parent.ID, p))),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.IntVal(v.rng.Int63n(1 << 30)),
			tuple.StrVal(pad),
			tuple.BytesVal(inline),
		})
		if err != nil {
			return nil, err
		}
		if err := parent.Tree.Insert(p, rec); err != nil {
			return nil, err
		}
	}
	// Deduplicate Homes entries (a parent embeds a subobject once even if
	// assignment padding repeated a unit).
	for oid, homes := range v.Homes {
		seen := map[int64]bool{}
		out := homes[:0]
		for _, h := range homes {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
		v.Homes[oid] = out
	}
	if err := v.ResetCold(); err != nil {
		return nil, err
	}
	return v, nil
}

// ResetCold mirrors DB.ResetCold.
func (v *ValueDB) ResetCold() error {
	if err := v.Pool.FlushAll(); err != nil {
		return err
	}
	if err := v.Pool.Invalidate(); err != nil {
		return err
	}
	v.Disk.ResetStats()
	return nil
}

// ChildCount returns the number of distinct logical subobjects.
func (v *ValueDB) ChildCount() int { return v.childCount }

// ChildRelID returns the pseudo relation id tagging subobject OIDs.
func (v *ValueDB) ChildRelID() uint16 { return v.childRelID }

// GenSequence mirrors DB.GenSequence for the value layout: retrieves
// over parent ranges and updates targeting logical subobjects.
func (v *ValueDB) GenSequence(numRetrieves int, prUpdate float64, numTop int) []Op {
	if prUpdate > MaxUpdateFraction {
		prUpdate = MaxUpdateFraction
	}
	if prUpdate < 0 {
		prUpdate = 0
	}
	numUpdates := 0
	if prUpdate > 0 {
		numUpdates = int(float64(numRetrieves)*prUpdate/(1-prUpdate) + 0.5)
	}
	ops := make([]Op, 0, numRetrieves+numUpdates)
	for i := 0; i < numRetrieves; i++ {
		nt := numTop
		if nt > v.Cfg.NumParents {
			nt = v.Cfg.NumParents
		}
		lo := int64(0)
		if v.Cfg.NumParents > nt {
			lo = v.rng.Int63n(int64(v.Cfg.NumParents - nt + 1))
		}
		ops = append(ops, Op{Kind: OpRetrieve, Lo: lo, Hi: lo + int64(nt) - 1, AttrIdx: FieldRet1 + v.rng.Intn(3)})
	}
	for i := 0; i < numUpdates; i++ {
		op := Op{Kind: OpUpdate}
		for j := 0; j < v.Cfg.UpdateBatch; j++ {
			op.Targets = append(op.Targets, object.NewOID(v.childRelID, v.rng.Int63n(int64(v.childCount))))
			op.NewRet1 = append(op.NewRet1, v.rng.Int63n(1<<30))
		}
		ops = append(ops, op)
	}
	v.rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}
