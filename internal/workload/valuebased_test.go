package workload

import (
	"testing"

	"corep/internal/object"
)

func TestValueBasedBuild(t *testing.T) {
	db, err := BuildValueBased(Config{NumParents: 300, SizeUnit: 5, UseFactor: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 100 units over 500 subobjects... NumUnits = 300/3 = 100, nChild = 500.
	if db.ChildCount() != 500 {
		t.Fatalf("children = %d", db.ChildCount())
	}
	n, err := db.Parent.Tree.Len()
	if err != nil || n != 300 {
		t.Fatalf("|ParentRelV| = %d, %v", n, err)
	}
	// Homes invariant: every parent embedding a subobject appears once.
	total := 0
	for oid, homes := range db.Homes {
		seen := map[int64]bool{}
		for _, h := range homes {
			if seen[h] {
				t.Fatalf("duplicate home for %v", oid)
			}
			seen[h] = true
		}
		total += len(homes)
	}
	// Each parent embeds SizeUnit subobjects: total home slots = 300×5.
	if total != 300*5 {
		t.Fatalf("home slots = %d, want 1500", total)
	}
}

func TestValueBasedParentWidth(t *testing.T) {
	db, err := BuildValueBased(Config{NumParents: 100, SizeUnit: 5, UseFactor: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.Parent.Tree.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// Base body ≈ 200 bytes minus the OID list, plus 5 embedded ~100 B
	// children ≈ 660–720 bytes.
	if len(rec) < 550 || len(rec) > 850 {
		t.Fatalf("value parent record = %d bytes", len(rec))
	}
}

func TestValueBasedSequence(t *testing.T) {
	db, err := BuildValueBased(Config{NumParents: 200, SizeUnit: 3, UseFactor: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ops := db.GenSequence(20, 0.5, 10)
	r, u := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpRetrieve:
			r++
			if op.Hi-op.Lo+1 != 10 {
				t.Fatalf("numtop = %d", op.Hi-op.Lo+1)
			}
		case OpUpdate:
			u++
			for _, oid := range op.Targets {
				if oid.Rel() != db.ChildRelID() {
					t.Fatalf("update target %v not a value subobject", oid)
				}
				if oid.Key() >= int64(db.ChildCount()) {
					t.Fatalf("update target %v out of range", oid)
				}
			}
		}
	}
	if r != 20 || u != 20 {
		t.Fatalf("r=%d u=%d", r, u)
	}
	_ = object.OID(0)
}
