package workload

import (
	"fmt"
	"sync"
	"time"

	"corep/internal/cache"
	"corep/internal/disk"
	"corep/internal/reclust"
	"corep/internal/wal"
)

// WAL support for generated databases: the crash-chaos harness drives a
// workload DB with the no-steal gate armed and an in-memory log device
// whose sync watermark models what a process kill leaves behind. The
// workload layer logs page images — a workload database's structure is
// deterministic in its Config (schedules contain retrieves and updates,
// never inserts, so B-tree roots don't move) — plus, when online
// reclustering is on, the placement map as a metadata blob: placements
// are the one piece of structure the Config cannot re-derive, so each
// migration batch commits them alongside its extent page images
// (WALCommitMeta) and CrashAndRecover restores them from Result.Meta.

// WALState is the log attached by EnableWAL.
type WALState struct {
	mu  sync.Mutex
	log *wal.Log
	dev *wal.MemDevice
	seq uint64
}

// Log exposes the attached log (stats, direct appends in tests).
func (w *WALState) Log() *wal.Log { return w.log }

// Device exposes the in-memory log device (crash controls).
func (w *WALState) Device() *wal.MemDevice { return w.dev }

// EnableWAL attaches an in-memory write-ahead log and arms the buffer
// pool's no-steal gate. syncDelay is the simulated fsync latency (the
// knob that makes group commit measurable). Call after Build: the
// build's ResetCold leaves the pool clean, so the log starts with
// nothing owed to it.
func (db *DB) EnableWAL(syncDelay time.Duration) error {
	if db.WAL != nil {
		return fmt.Errorf("workload: WAL already enabled")
	}
	dev := wal.NewMemDevice(syncDelay)
	l, err := wal.Open(dev)
	if err != nil {
		return err
	}
	db.WAL = &WALState{log: l, dev: dev}
	db.Pool.SetNoSteal(true)
	db.Pool.MarkDirtyUnlogged()
	return nil
}

// WALCommit makes the current mutation durable: capture every unlogged
// page image, append a commit record, sync (group-committed across
// concurrent callers). Returns the commit's sequence number. The
// capture and appends are serialized under the WAL mutex; the sync runs
// outside it so concurrent committers share fsyncs.
func (db *DB) WALCommit() (uint64, error) {
	w := db.WAL
	if w == nil {
		return 0, nil
	}
	w.mu.Lock()
	if err := db.walCaptureLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.seq++
	seq := w.seq
	lsn, err := w.log.AppendCommit(seq)
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := w.log.Sync(lsn); err != nil {
		return seq, err
	}
	return seq, nil
}

// WALCommitMeta is WALCommit with a metadata blob riding in front of
// the commit record: the blob becomes the recovery metadata if and only
// if this commit survives. The reclustering reorganizer commits each
// migration batch's placement state this way.
func (db *DB) WALCommitMeta(meta []byte) (uint64, error) {
	w := db.WAL
	if w == nil {
		return 0, nil
	}
	w.mu.Lock()
	if err := db.walCaptureLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.log.AppendMeta(meta); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.seq++
	seq := w.seq
	lsn, err := w.log.AppendCommit(seq)
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := w.log.Sync(lsn); err != nil {
		return seq, err
	}
	return seq, nil
}

func (db *DB) walCaptureLocked() error {
	return db.Pool.CollectUnlogged(func(id disk.PageID, img []byte) error {
		_, err := db.WAL.log.AppendPage(id, img)
		return err
	})
}

// WALRelieve captures unlogged frames without a commit record when the
// backlog nears the pool's capacity — read paths dirty cache pages that
// no commit will otherwise drain. The captured images ride with the
// next commit's fsync; discarded by recovery if no commit follows.
func (db *DB) WALRelieve() error {
	w := db.WAL
	if w == nil {
		return nil
	}
	if db.Pool.UnloggedCount() < db.Pool.Capacity()/4 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return db.walCaptureLocked()
}

// WALRollback undoes an uncommitted mutation after a failed update:
// drop every frame (the no-steal gate guarantees uncommitted changes
// live only in frames) and redo the log's committed batches into the
// simulated disk, leaving exactly the last committed state. The cache
// is rebuilt empty — its hash file died with the frames.
func (db *DB) WALRollback() error {
	w := db.WAL
	if w == nil {
		return fmt.Errorf("workload: rollback without a WAL")
	}
	db.Pool.Prefetcher().Drain()
	if err := db.Pool.DropAll(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := wal.Recover(w.dev, db.Disk.Restore); err != nil {
		return err
	}
	return db.rebuildCache()
}

// CrashAndRecover simulates a process kill and the subsequent reopen.
// The pool's frames die; the disk keeps whatever was written to it
// (including torn pages); the log survives as its synced prefix plus
// keepUnsynced bytes of the unsynced tail — the OS page cache's partial
// mercy, possibly cutting mid-record. Committed batches in the
// surviving log are redone into the disk; the gate is disarmed (the
// post-crash phase is verification, not logged operation) and the cache
// rebuilt empty. Returns what recovery replayed and discarded.
func (db *DB) CrashAndRecover(keepUnsynced int64) (*wal.Result, error) {
	w := db.WAL
	if w == nil {
		return nil, fmt.Errorf("workload: crash without a WAL")
	}
	db.Pool.Prefetcher().Drain()
	if err := db.Pool.DropAll(); err != nil {
		return nil, err
	}
	surviving := w.dev.Crash(keepUnsynced)
	res, err := wal.Recover(wal.NewMemDeviceBytes(surviving), db.Disk.Restore)
	if err != nil {
		return nil, err
	}
	db.Pool.SetNoSteal(false)
	db.WAL = nil
	if db.Reclust != nil {
		// Placements beyond the last committed metadata blob died with
		// the process; the blob's entries reference extent pages whose
		// images were replayed above, so exactly the durable redirects
		// come back — no lost and no duplicated placements.
		entries, derr := reclust.DecodePlacements(res.Meta)
		if derr != nil {
			return nil, derr
		}
		db.Reclust.restoreAfterCrash(entries)
	}
	if err := db.rebuildCache(); err != nil {
		return nil, err
	}
	return res, nil
}

// rebuildCache replaces the outside cache with a fresh, empty one (same
// sizing and seed as Build's). The old hash-file pages are orphaned on
// the disk; nothing references them again.
func (db *DB) rebuildCache() error {
	if db.Cfg.CacheUnits <= 0 {
		return nil
	}
	// Bucket-directory creation dirties more frames than a small pool
	// holds; cache pages are derived data (rebuilt empty after any
	// crash), so they are exempt from write-ahead — disarm the no-steal
	// gate while they are created. Only the rollback path arrives here
	// with the gate still armed.
	if db.Pool.NoSteal() {
		db.Pool.SetNoSteal(false)
		defer db.Pool.SetNoSteal(true)
	}
	c, err := cache.New(db.Pool, db.Cfg.CacheUnits, db.Cfg.CacheBuckets, db.Cfg.Seed+1)
	if err != nil {
		return err
	}
	c.Obs = db.Obs
	db.Cache = c
	return nil
}
