package workload

import (
	"testing"

	"corep/internal/object"
	"corep/internal/tuple"
)

// smallCfg keeps unit tests fast; experiments use paper scale.
func smallCfg() Config {
	return Config{NumParents: 400, SizeUnit: 5, UseFactor: 2, OverlapFactor: 1, Seed: 42}
}

func TestBuildCardinalities(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// eqn (1): |ChildRel| = NumParents*SizeUnit/ShareFactor = 400*5/2 = 1000.
	n, err := db.Children[0].Tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("|ChildRel| = %d, want 1000", n)
	}
	// NumUnits = NumParents/UseFactor = 200.
	if db.NumUnits() != 200 {
		t.Fatalf("NumUnits = %d, want 200", db.NumUnits())
	}
	pn, err := db.Parent.Tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if pn != 400 {
		t.Fatalf("|ParentRel| = %d", pn)
	}
}

func TestUnitsExactSizeAndDistinct(t *testing.T) {
	db, err := Build(Config{NumParents: 300, SizeUnit: 5, UseFactor: 3, OverlapFactor: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range db.Units {
		if len(u) != 5 {
			t.Fatalf("unit %d size %d", i, len(u))
		}
		seen := map[object.OID]bool{}
		for _, o := range u {
			if seen[o] {
				t.Fatalf("unit %d has duplicate member %v", i, o)
			}
			seen[o] = true
		}
	}
}

func TestUseFactorExact(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for u, users := range db.UnitUsers {
		if len(users) != 2 {
			t.Fatalf("unit %d used by %d parents, want UseFactor=2", u, len(users))
		}
	}
}

func TestOverlapFactorRealized(t *testing.T) {
	db, err := Build(Config{NumParents: 400, SizeUnit: 5, UseFactor: 1, OverlapFactor: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Count unit memberships per subobject: mean must be ≈ OverlapFactor.
	counts := map[object.OID]int{}
	for _, u := range db.Units {
		for _, o := range u {
			counts[o]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / float64(len(counts))
	if mean < 3.5 || mean > 4.5 {
		t.Fatalf("mean overlap = %f, want ≈4", mean)
	}
}

func TestParentTupleWidth(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.Parent.Tree.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// "A typical length of a ParentRel tuple is 200 bytes."
	if len(rec) < 180 || len(rec) > 220 {
		t.Fatalf("parent record = %d bytes, want ≈200", len(rec))
	}
	crec, err := db.Children[0].Tree.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crec) < 90 || len(crec) > 110 {
		t.Fatalf("child record = %d bytes, want ≈100", len(crec))
	}
}

func TestChildrenFieldDecodes(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	idx := db.ParentSchema.MustIndex("children")
	rec, err := db.Parent.Tree.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tuple.DecodeField(db.ParentSchema, rec, idx)
	if err != nil {
		t.Fatal(err)
	}
	oids, err := object.DecodeOIDs(v.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 5 {
		t.Fatalf("children = %d", len(oids))
	}
	// They must equal the bookkeeping unit.
	unit := db.UnitOf(7)
	for i := range unit {
		if unit[i] != oids[i] {
			t.Fatalf("stored unit differs from bookkeeping at %d", i)
		}
	}
	// And every OID must resolve.
	for _, o := range oids {
		rel, err := db.ChildByRelID(o.Rel())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rel.Tree.Get(o.Key()); err != nil {
			t.Fatalf("child %v missing: %v", o, err)
		}
	}
}

func TestMultipleChildRelations(t *testing.T) {
	db, err := Build(Config{NumParents: 400, SizeUnit: 5, UseFactor: 2, NumChildRel: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Children) != 4 {
		t.Fatalf("children relations = %d", len(db.Children))
	}
	// Every unit's members come from a single relation.
	relsSeen := map[uint16]bool{}
	for i, u := range db.Units {
		rel := u[0].Rel()
		relsSeen[rel] = true
		for _, o := range u {
			if o.Rel() != rel {
				t.Fatalf("unit %d spans relations", i)
			}
		}
	}
	if len(relsSeen) != 4 {
		t.Fatalf("units cover %d relations, want 4", len(relsSeen))
	}
}

func TestClusteredBuild(t *testing.T) {
	cfg := smallCfg()
	cfg.Clustered = true
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.ClusterRel == nil || db.ClusterRel.Index == nil {
		t.Fatal("ClusterRel or its ISAM index missing")
	}
	// ClusterRel holds every parent and every child exactly once.
	n, err := db.ClusterRel.Tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 400+1000 {
		t.Fatalf("|ClusterRel| = %d, want 1400", n)
	}
	if db.ClusterRel.Index.Count() != 1400 {
		t.Fatalf("index entries = %d", db.ClusterRel.Index.Count())
	}
	// Every subobject is owned and reachable via the index.
	if len(db.Assignment.Owner) != 1000 {
		t.Fatalf("owners = %d", len(db.Assignment.Owner))
	}
	for _, u := range db.Units[:10] {
		for _, o := range u {
			rid, err := db.ClusterRel.Index.Probe(int64(o))
			if err != nil {
				t.Fatalf("probe %v: %v", o, err)
			}
			_, payload, err := db.ClusterRel.Tree.GetAt(rid)
			if err != nil {
				t.Fatal(err)
			}
			v, err := tuple.DecodeField(db.ClusterSchema, payload, db.ClusterSchema.MustIndex("OID"))
			if err != nil {
				t.Fatal(err)
			}
			if object.OID(v.Int) != o {
				t.Fatalf("index probe of %v returned %v", o, object.OID(v.Int))
			}
		}
	}
}

func TestGenSequenceShape(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := db.GenSequence(100, 0.5, 10)
	retrieves, updates := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpRetrieve:
			retrieves++
			if op.Hi-op.Lo+1 != 10 {
				t.Fatalf("numtop = %d", op.Hi-op.Lo+1)
			}
			if op.Lo < 0 || op.Hi >= int64(db.Cfg.NumParents) {
				t.Fatalf("range [%d,%d] out of bounds", op.Lo, op.Hi)
			}
			if op.AttrIdx < FieldRet1 || op.AttrIdx > FieldRet3 {
				t.Fatalf("attr = %d", op.AttrIdx)
			}
		case OpUpdate:
			updates++
			if len(op.Targets) != db.Cfg.UpdateBatch {
				t.Fatalf("update batch = %d", len(op.Targets))
			}
		}
	}
	if retrieves != 100 || updates != 100 { // p=0.5 → equal counts
		t.Fatalf("retrieves=%d updates=%d", retrieves, updates)
	}
}

func TestGenSequenceUpdateFractionCapped(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ops := db.GenSequence(10, 1.0, 5)
	updates := 0
	for _, op := range ops {
		if op.Kind == OpUpdate {
			updates++
		}
	}
	// p capped at 0.95 → 19 updates per 10 retrieves.
	if updates != 190 {
		t.Fatalf("updates = %d, want 190", updates)
	}
}

func TestGenSequenceNoUpdates(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range db.GenSequence(20, 0, 1) {
		if op.Kind != OpRetrieve {
			t.Fatal("update generated at p=0")
		}
	}
}

func TestApplyUpdateBase(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	oid := db.Units[0][0]
	op := Op{Kind: OpUpdate, Targets: []object.OID{oid}, NewRet1: []int64{123456}}
	if err := db.ApplyUpdateBase(op); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.ChildByRelID(oid.Rel())
	rec, err := rel.Tree.Get(oid.Key())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tuple.DecodeField(db.ChildSchema, rec, FieldRet1)
	if v.Int != 123456 {
		t.Fatalf("ret1 = %d", v.Int)
	}
}

func TestApplyUpdateCluster(t *testing.T) {
	cfg := smallCfg()
	cfg.Clustered = true
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oid := db.Units[3][2]
	op := Op{Kind: OpUpdate, Targets: []object.OID{oid}, NewRet1: []int64{777}}
	if err := db.ApplyUpdateCluster(op); err != nil {
		t.Fatal(err)
	}
	rid, err := db.ClusterRel.Index.Probe(int64(oid))
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := db.ClusterRel.Tree.GetAt(rid)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tuple.DecodeField(db.ClusterSchema, payload, 2)
	if v.Int != 777 {
		t.Fatalf("ret1 = %d", v.Int)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Units {
		for j := range a.Units[i] {
			if a.Units[i][j].Key() != b.Units[i][j].Key() {
				t.Fatalf("unit %d member %d differs across builds", i, j)
			}
		}
	}
	ra, _ := a.Parent.Tree.Get(5)
	rb, _ := b.Parent.Tree.Get(5)
	if string(ra) != string(rb) {
		t.Fatal("parent record differs across same-seed builds")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{NumParents: -1},
		{NumParents: 10, SizeUnit: 5, UseFactor: 100, OverlapFactor: 1, NumChildRel: 1},
		{NumParents: 100, SizeUnit: 5, UseFactor: 50, OverlapFactor: 1, NumChildRel: 10},
	}
	for i, c := range bad {
		if err := c.WithDefaults().Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
}

func TestBuildStartsCold(t *testing.T) {
	db, err := Build(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s := db.Disk.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("stats not reset after build: %+v", s)
	}
	if db.Pool.PinnedCount() != 0 {
		t.Fatal("pinned pages after build")
	}
	// First access must hit the disk (pool is cold).
	if _, err := db.Parent.Tree.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := db.Disk.Stats(); s.Reads == 0 {
		t.Fatal("pool not cold after build")
	}
}

func TestShareFactor(t *testing.T) {
	c := Config{UseFactor: 5, OverlapFactor: 3}
	if c.ShareFactor() != 15 {
		t.Fatalf("sharefactor = %d", c.ShareFactor())
	}
}
