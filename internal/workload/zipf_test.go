package workload

import (
	"math/rand"
	"testing"

	"corep/internal/object"
	"corep/internal/tuple"
)

// TestZipfSkewConcentrates checks the sampler's shape: at θ = 1.1 the
// lowest decile of the range must absorb the bulk of the draws, while
// θ just above 0 stays near-uniform.
func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 1000, 20000
	rng := rand.New(rand.NewSource(7))
	lowDecile := func(theta float64) float64 {
		tab := newZipfTable(n, theta)
		hits := 0
		for i := 0; i < draws; i++ {
			if tab.draw(rng) < n/10 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	uniform := lowDecile(1e-9) // θ→0 degenerates to uniform
	skewed := lowDecile(1.1)
	if uniform < 0.07 || uniform > 0.13 {
		t.Fatalf("near-zero θ lowest-decile share = %.3f, want ≈0.10", uniform)
	}
	if skewed < 0.5 {
		t.Fatalf("θ=1.1 lowest-decile share = %.3f, want ≥0.50", skewed)
	}
}

// TestZipfThetaZeroSequenceUnchanged pins the compatibility guarantee:
// a θ=0 config must generate byte-for-byte the sequence the pre-zipf
// generator produced (same rng stream, same draws), because every
// figure and bench baseline depends on it.
func TestZipfThetaZeroSequenceUnchanged(t *testing.T) {
	cfg := Config{NumParents: 400, Seed: 11, CacheUnits: 50}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Build(Config{NumParents: 400, Seed: 11, CacheUnits: 50, ZipfTheta: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sa := a.GenSequence(60, 0.4, 8)
	sb := b.GenSequence(60, 0.4, 8)
	if len(sa) != len(sb) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Kind != sb[i].Kind || sa[i].Lo != sb[i].Lo || sa[i].Hi != sb[i].Hi || sa[i].AttrIdx != sb[i].AttrIdx {
			t.Fatalf("op %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
		for j := range sa[i].Targets {
			if sa[i].Targets[j] != sb[i].Targets[j] || sa[i].NewRet1[j] != sb[i].NewRet1[j] {
				t.Fatalf("op %d target %d differs", i, j)
			}
		}
	}
}

// TestZipfSequenceSkewsParents checks the generator end to end: with a
// skewed config, retrieve ranges concentrate on low parent keys and
// update targets concentrate on hot-parent unit members.
func TestZipfSequenceSkewsParents(t *testing.T) {
	db, err := Build(Config{NumParents: 2000, Seed: 3, ZipfTheta: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ops := db.GenSequence(400, 0.4, 8)
	lowLo, retrieves := 0, 0
	targets := make(map[object.OID]int)
	for _, op := range ops {
		switch op.Kind {
		case OpRetrieve:
			retrieves++
			if op.Lo < int64(db.Cfg.NumParents/10) {
				lowLo++
			}
		case OpUpdate:
			for _, o := range op.Targets {
				targets[o]++
			}
		}
	}
	if share := float64(lowLo) / float64(retrieves); share < 0.35 {
		t.Fatalf("θ=0.99 low-decile retrieve share = %.3f, want ≥0.35", share)
	}
	// Update-target reuse: skew must produce repeated targets (a uniform
	// draw over 10k children almost never repeats in a few hundred picks).
	max := 0
	for _, c := range targets {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Fatalf("hottest update target hit %d times, want ≥3 under skew", max)
	}
	// Every target must still be a valid child OID.
	for o := range targets {
		if _, err := db.ChildByRelID(o.Rel()); err != nil {
			t.Fatalf("update target %v: %v", o, err)
		}
	}
}

// TestApplyUpdateVersionedAndDrain exercises the versioned update path
// against the base apply: staging through the store and draining back
// must leave the base B-trees exactly as the in-place path would.
func TestApplyUpdateVersionedAndDrain(t *testing.T) {
	db, err := Build(Config{NumParents: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.EnableVersioning()

	op := db.genUpdate()
	if len(op.Targets) == 0 {
		t.Fatal("empty update op")
	}
	// EnableVersioning published the empty bootstrap epoch 1, so the
	// first real update commits as epoch 2.
	marked := uint64(0)
	if err := db.ApplyUpdateVersioned(op, func(e uint64) { marked = e }); err != nil {
		t.Fatal(err)
	}
	if marked != 2 {
		t.Fatalf("mark hook saw epoch %d, want 2", marked)
	}
	// Visible through a snapshot, not yet in the base tree.
	sn := db.Versions.Begin()
	last := len(op.Targets) - 1
	if v, ok := sn.Read(op.Targets[last]); !ok || v != op.NewRet1[last] {
		t.Fatalf("snapshot read = %d,%v want %d,true", v, ok, op.NewRet1[last])
	}
	sn.Release()

	n, err := db.DrainVersions(db.ApplyUpdateBase)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || db.Versions.Pending() != 0 {
		t.Fatalf("drain applied %d, pending %d", n, db.Versions.Pending())
	}
	// Base tree now holds the drained values (last-writer for dup targets).
	want := make(map[object.OID]int64)
	for i, o := range op.Targets {
		want[o] = op.NewRet1[i]
	}
	for o, wv := range want {
		rel, err := db.ChildByRelID(o.Rel())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := rel.Tree.Get(o.Key())
		if err != nil {
			t.Fatal(err)
		}
		v, err := tuple.DecodeField(db.ChildSchema, rec, FieldRet1)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int != wv {
			t.Fatalf("base ret1 for %v = %d, want %d", o, v.Int, wv)
		}
	}

	// Invalid target aborts cleanly and installs nothing.
	bad := Op{Kind: OpUpdate, Targets: []object.OID{object.NewOID(9999, 0)}, NewRet1: []int64{1}}
	if err := db.ApplyUpdateVersioned(bad, nil); err == nil {
		t.Fatal("invalid relation id: want error")
	}
	st := db.Versions.Stats()
	if st.Aborts != 1 || st.Pending != 0 {
		t.Fatalf("after abort: %+v", st)
	}
}
